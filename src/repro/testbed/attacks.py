"""Executable attack scripts: end-to-end validation on the testbed.

Each function reproduces one attack from Table I against the *actual*
Python implementation (not its model): the new protocol-level attacks
P1-P3, the implementation issues I1-I6, and the prior attacks ProChecker
re-identified.  Every script returns an :class:`AttackResult` whose
``succeeded`` flag states whether the implementation fell to the attack —
the benchmarks assert these against the paper's detection matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .. import faults
from ..cpv.equivalence import distinguishable
from ..lte import constants as c
from .attacker import Attacker
from .simulator import Testbed


@dataclass
class AttackResult:
    """Outcome of one testbed attack run."""

    attack_id: str
    implementation: str
    succeeded: bool
    evidence: str
    details: Dict[str, object] = field(default_factory=dict)
    #: whether the attack's precondition holds for this implementation;
    #: ``False`` marks the Table I "-" cells (the verdict layer keys
    #: NOT_APPLICABLE on this flag, never on the free-form evidence)
    applicable: bool = True

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (``repro attack --json``, archival)."""
        return {
            "attack_id": self.attack_id,
            "implementation": self.implementation,
            "succeeded": self.succeeded,
            "evidence": self.evidence,
            "details": dict(self.details),
            "applicable": self.applicable,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttackResult":
        return cls(
            attack_id=str(payload["attack_id"]),
            implementation=str(payload["implementation"]),
            succeeded=bool(payload["succeeded"]),
            evidence=str(payload["evidence"]),
            details=dict(payload.get("details", {})),
            applicable=bool(payload.get("applicable", True)),
        )


# Alias matching the paper's "attack outcome" terminology.
AttackOutcome = AttackResult

AttackFn = Callable[[str], AttackResult]
_REGISTRY: Dict[str, AttackFn] = {}


def attack(identifier: str):
    """Register an attack script under its Table I identifier."""
    def decorate(fn: AttackFn) -> AttackFn:
        _REGISTRY[identifier] = fn
        return fn
    return decorate


def registry() -> Dict[str, AttackFn]:
    return dict(_REGISTRY)


def run_attack(identifier: str, implementation: str) -> AttackResult:
    try:
        fn = _REGISTRY[identifier]
    except KeyError:
        raise ValueError(f"unknown attack {identifier!r}") from None
    faults.trip("testbed.run_attack", key=identifier)
    return fn(implementation)


# ---------------------------------------------------------------------------
# Shared phases
# ---------------------------------------------------------------------------
def _capture_stale_auth_request(testbed: Testbed, attacker: Attacker,
                                victim: str) -> Optional[bytes]:
    """The P1/P2 capture phase (Fig. 4).

    The attacker's malicious UE sends an attach_request claiming the
    victim's IMSI; the HSS mints a genuine authentication_request, which
    the attacker captures and withholds.  A later legitimate
    re-authentication advances the victim's SQN past the captured one,
    leaving it stale-but-in-window.
    """
    station = testbed.station(victim)
    drop = attacker.install_drop_filter(victim,
                                        (c.AUTHENTICATION_REQUEST,))
    attacker.inject_plain_to_mme(victim, c.ATTACH_REQUEST,
                                 {"imsi": str(station.subscriber.imsi)})
    station.link.interceptor = None
    if not drop.dropped_frames:
        return None
    captured = drop.dropped_frames[-1]   # the withheld, never-seen SQN
    # Legitimate re-authentication moves the victim's SQN forward.
    attacker.inject_plain_to_mme(victim, c.ATTACH_REQUEST,
                                 {"imsi": str(station.subscriber.imsi)})
    return captured


# ---------------------------------------------------------------------------
# New protocol attacks (P1-P3)
# ---------------------------------------------------------------------------
@attack("P1")
def p1_service_disruption(implementation: str) -> AttackResult:
    """Replay a stale authentication_request; the UE accepts it and
    regenerates (old) session keys — service disruption + battery drain."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = _capture_stale_auth_request(testbed, attacker, "victim")
    if captured is None:
        return AttackResult("P1", implementation, False,
                            "capture phase failed")
    victim = testbed.station("victim")
    keys_before = victim.ue.pending_kasme
    accepts_before = victim.ue.usim.accept_count
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    attacker.replay_to_ue("victim", captured)
    responses = attacker.response_frame("victim", mark).labels
    accepted = (victim.ue.usim.accept_count > accepts_before
                and c.AUTHENTICATION_RESPONSE in responses)
    desynced = victim.ue.pending_kasme is not None \
        and victim.ue.pending_kasme != keys_before
    return AttackResult(
        "P1", implementation, accepted,
        ("stale authentication_request accepted; session keys regenerated "
         "from an old SQN (desynchronised from the network)" if accepted
         else f"stale request rejected (responses: {responses})"),
        {"responses": responses, "keys_regenerated": desynced},
    )


@attack("P2")
def p2_linkability(implementation: str) -> AttackResult:
    """Replay the captured authentication_request to every UE in the cell;
    only the victim answers authentication_response (Fig. 6)."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.add_ue("bystander")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = _capture_stale_auth_request(testbed, attacker, "victim")
    if captured is None:
        return AttackResult("P2", implementation, False,
                            "capture phase failed")
    marks = {name: attacker.mark(name) for name in testbed.stations}
    for name in testbed.stations:
        attacker.cut_network(name)
    attacker.replay_to_all_ues(captured)
    victim_frame = attacker.response_frame("victim", marks["victim"])
    bystander_frame = attacker.response_frame("bystander",
                                              marks["bystander"])
    verdict = distinguishable(victim_frame, bystander_frame)
    return AttackResult(
        "P2", implementation, bool(verdict),
        (f"victim distinguishable from bystander: {verdict.test}"
         if verdict else "responses indistinguishable"),
        {"victim": victim_frame.labels,
         "bystander": bystander_frame.labels},
    )


@attack("P3")
def p3_selective_denial(implementation: str) -> AttackResult:
    """Drop five consecutive GUTI_reallocation_commands; the MME aborts
    and both sides keep the old GUTI — long-term trackability."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    guti_before = str(victim.ue.current_guti)
    attacker = Attacker(testbed)
    drop = attacker.install_drop_filter(
        "victim", (c.GUTI_REALLOCATION_COMMAND,))
    victim.mme.initiate_guti_reallocation()
    for _ in range(6):
        testbed.advance(10.0)
    aborted = c.GUTI_REALLOCATION_COMMAND in victim.mme.aborted_procedures
    unchanged = str(victim.ue.current_guti) == guti_before
    undetected = not any(e.kind == "guti_realloc_rejected"
                         for e in victim.ue.events)
    succeeded = aborted and unchanged and undetected
    return AttackResult(
        "P3", implementation, succeeded,
        (f"{len(drop.dropped)} commands dropped; procedure aborted after "
         f"T3450 exhaustion; UE keeps GUTI {guti_before} and neither side "
         f"detected the denial" if succeeded else "procedure completed"),
        {"dropped": len(drop.dropped), "aborted": aborted,
         "guti_unchanged": unchanged},
    )


@attack("P3-5G")
def p3_5g_configuration_update_denial(implementation: str) -> AttackResult:
    """The paper's "Impact on 5G" for P3: TS 24.501's Configuration
    Update procedure aborts after the fifth T3555 expiry, so dropping
    five configuration_update_commands pins the victim to its 5G-GUTI."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    guti_before = str(victim.ue.current_guti)
    attacker = Attacker(testbed)
    drop = attacker.install_drop_filter(
        "victim", (c.CONFIGURATION_UPDATE_COMMAND,))
    victim.mme.initiate_configuration_update()
    for _ in range(6):
        testbed.advance(10.0)
    aborted = c.CONFIGURATION_UPDATE_COMMAND         in victim.mme.aborted_procedures
    unchanged = str(victim.ue.current_guti) == guti_before
    succeeded = aborted and unchanged
    return AttackResult(
        "P3-5G", implementation, succeeded,
        (f"{len(drop.dropped)} configuration_update_commands dropped; "
         f"procedure aborted on the fifth T3555 expiry; the UE keeps "
         f"5G-GUTI {guti_before}" if succeeded
         else "configuration update completed"),
        {"dropped": len(drop.dropped), "aborted": aborted,
         "guti_unchanged": unchanged},
    )


# ---------------------------------------------------------------------------
# Implementation issues (I1-I6)
# ---------------------------------------------------------------------------
@attack("I1")
def i1_replay_protected(implementation: str) -> AttackResult:
    """Replay the session's protected attach_accept after attach."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = attacker.captured_frame(c.ATTACH_ACCEPT)
    if captured is None:
        return AttackResult("I1", implementation, False, "no capture")
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    attacker.replay_to_ue("victim", captured)
    responses = attacker.response_frame("victim", mark).labels
    accepted = c.ATTACH_COMPLETE in responses
    return AttackResult(
        "I1", implementation, accepted,
        ("replayed attach_accept accepted (attach_complete re-sent); "
         "replay protection broken" if accepted
         else "replayed message discarded"),
        {"responses": responses},
    )


@attack("I2")
def i2_plain_protected(implementation: str) -> AttackResult:
    """Deliver a protected-type message with a plain (0x0) header after
    the security context is established."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    forged_guti = "00101-0001-01-deadbeef"
    attacker.inject_plain_to_ue("victim", c.GUTI_REALLOCATION_COMMAND,
                                {"guti": forged_guti})
    responses = attacker.response_frame("victim", mark).labels
    accepted = (str(victim.ue.current_guti) == forged_guti
                and c.GUTI_REALLOCATION_COMPLETE in responses)
    return AttackResult(
        "I2", implementation, accepted,
        ("plaintext protected-type message accepted after security "
         "context: integrity and confidentiality broken" if accepted
         else "plaintext message rejected"),
        {"responses": responses, "guti": str(victim.ue.current_guti)},
    )


@attack("I3")
def i3_counter_reset(implementation: str) -> AttackResult:
    """Byte-exact replay of the session's authentication_request."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = attacker.captured_frame(c.AUTHENTICATION_REQUEST)
    if captured is None:
        return AttackResult("I3", implementation, False, "no capture")
    victim = testbed.station("victim")
    accepts_before = victim.ue.usim.accept_count
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    attacker.replay_to_ue("victim", captured)
    responses = attacker.response_frame("victim", mark).labels
    accepted = (c.AUTHENTICATION_RESPONSE in responses)
    return AttackResult(
        "I3", implementation, accepted,
        ("identical SQN re-accepted and counters reset: replay protection "
         "of the authentication procedure broken" if accepted
         else f"replay rejected ({responses})"),
        {"responses": responses,
         "usim_accepts": victim.ue.usim.accept_count - accepts_before},
    )


@attack("I4")
def i4_security_bypass(implementation: str) -> AttackResult:
    """Reject the UE, then drive it to registered with a replayed
    attach_accept — no authentication, no SMC."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    captured = attacker.captured_frame(c.ATTACH_ACCEPT)
    if captured is None:
        return AttackResult("I4", implementation, False, "no capture")
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue("victim", c.ATTACH_REJECT,
                                {"cause": c.CAUSE_EPS_NOT_ALLOWED})
    victim.ue.power_on()          # re-attach; network is attacker-only
    attacker.replay_to_ue("victim", captured)
    bypassed = victim.ue.emm_state == c.EMM_REGISTERED
    return AttackResult(
        "I4", implementation, bypassed,
        ("UE reached EMM_REGISTERED without authentication or SMC after "
         "the reject: full security bypass" if bypassed
         else f"UE remained in {victim.ue.emm_state}"),
        {"final_state": victim.ue.emm_state},
    )


@attack("I5")
def i5_identity_leak(implementation: str) -> AttackResult:
    """Plaintext identity_request after attach; does the IMSI come back?"""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue("victim", c.IDENTITY_REQUEST,
                                {"identity_type": "imsi"})
    frame = attacker.response_frame("victim", mark)
    imsi = str(victim.subscriber.imsi)
    leaked = any(f"imsi:{imsi}" in str(term) for term in frame.terms)
    return AttackResult(
        "I5", implementation, leaked,
        (f"IMSI {imsi} returned in plaintext to an unauthenticated "
         f"identity_request" if leaked
         else "identity request ignored"),
        {"responses": frame.labels},
    )


@attack("I6")
def i6_smc_linkability(implementation: str) -> AttackResult:
    """Replay a mid-attach security_mode_command to every UE; only the
    victim (whose context verifies it) answers."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.add_ue("bystander")
    attacker = Attacker(testbed)
    # Stall the victim's attach right after SMC so the SMC stays the most
    # recently accepted protected message (the OAI acceptance window).
    attacker.install_drop_filter("victim", (c.ATTACH_ACCEPT,))
    testbed.station("victim").ue.power_on()
    testbed.station("victim").link.interceptor = None
    attacker.install_drop_filter("bystander", (c.ATTACH_ACCEPT,))
    testbed.station("bystander").ue.power_on()
    testbed.station("bystander").link.interceptor = None
    captured = attacker.captured_frame(c.SECURITY_MODE_COMMAND,
                                       index=0)
    if captured is None:
        return AttackResult("I6", implementation, False, "no capture")
    marks = {name: attacker.mark(name) for name in testbed.stations}
    for name in testbed.stations:
        attacker.cut_network(name)
    attacker.replay_to_all_ues(captured)
    victim_frame = attacker.response_frame("victim", marks["victim"])
    bystander_frame = attacker.response_frame("bystander",
                                              marks["bystander"])
    verdict = distinguishable(victim_frame, bystander_frame)
    return AttackResult(
        "I6", implementation, bool(verdict),
        (f"victim identified by SMC replay: {verdict.test}" if verdict
         else "responses indistinguishable"),
        {"victim": victim_frame.labels,
         "bystander": bystander_frame.labels},
    )
