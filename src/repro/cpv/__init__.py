"""Cryptographic protocol verifier substrate (the paper's ProVerif role).

- :mod:`repro.cpv.terms` — ground term algebra (pair/senc/mac/hash/kdf);
- :mod:`repro.cpv.deduction` — Dolev-Yao derivability (analysis closure +
  goal-directed synthesis) and the incremental :class:`Knowledge` store;
- :mod:`repro.cpv.protocol` — linear protocol traces with claim events;
- :mod:`repro.cpv.queries` — secrecy, correspondence and the CEGAR
  per-adversary-step feasibility check;
- :mod:`repro.cpv.equivalence` — observational distinguishability used by
  the linkability (privacy) properties.
"""

from .terms import (Atom, Hash, KDF, KIND_CONST, KIND_DATA, KIND_IDENTITY,
                    KIND_KEY, KIND_NONCE, Mac, Pair, SEnc, Term, TermError,
                    const, identity, nonce, pair, secret_key, unpair)
from .deduction import Knowledge, can_derive, saturate
from .protocol import (EVENT_CLAIM, EVENT_RECV, EVENT_SEND, Event,
                       ProtocolError, ProtocolTrace)
from .queries import (ACTION_DROP, ACTION_INJECT, ACTION_MODIFY, ACTION_PASS,
                      ACTION_REPLAY, ACTION_SNIFF, AdversaryAction,
                      FeasibilityVerdict, QueryResult, check_action_feasible,
                      check_correspondence, check_counterexample_feasibility,
                      check_secrecy)
from .equivalence import (DistinguishabilityResult, Frame, distinguishable,
                          linkability_experiment)

__all__ = [
    "Atom", "Hash", "KDF", "Mac", "Pair", "SEnc", "Term", "TermError",
    "KIND_CONST", "KIND_DATA", "KIND_IDENTITY", "KIND_KEY", "KIND_NONCE",
    "const", "identity", "nonce", "pair", "secret_key", "unpair",
    "Knowledge", "can_derive", "saturate",
    "EVENT_CLAIM", "EVENT_RECV", "EVENT_SEND", "Event", "ProtocolError",
    "ProtocolTrace",
    "ACTION_DROP", "ACTION_INJECT", "ACTION_MODIFY", "ACTION_PASS",
    "ACTION_REPLAY", "ACTION_SNIFF", "AdversaryAction", "FeasibilityVerdict",
    "QueryResult", "check_action_feasible", "check_correspondence",
    "check_counterexample_feasibility", "check_secrecy",
    "DistinguishabilityResult", "Frame", "distinguishable",
    "linkability_experiment",
]
