"""Observational distinguishability for linkability/privacy queries.

The paper uses "ProVerif's capability to reason about observational
equivalence" to find the P2 linkability attack: *can the adversary
distinguish two UEs based on their responses to a (replayed)
authentication_request?*  We model each world as a :class:`Frame` — the
ordered, labelled observations the adversary collects on the channel — and
decide distinguishability with a sound fragment of static equivalence:

1. **Label oracle** — differing response-type sequences (e.g. one UE
   answers ``authentication_response`` while the other answers
   ``auth_mac_failure``) are directly observable; this is exactly the
   distinction P2/I6 and the prior 3G linkability attack exploit.
2. **Equality tests** — for every pair of frame positions the adversary
   compares the terms for syntactic equality (a recipe test ``w_i = w_j``);
   a pair equal in one world but not the other distinguishes (this catches
   GUTI/TMSI-reuse linkability).
3. **Derivability tests** — a term derivable from one frame's knowledge
   but not the other's distinguishes (e.g. a plaintext IMSI in one world).

The fragment is sound (every "distinguishable" verdict is a real test) and
complete for the attack classes in the paper's Table I, all of which hinge
on message-type or value-reuse observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .deduction import Knowledge
from .terms import Term


@dataclass
class Frame:
    """The adversary's observations in one experiment world."""

    observations: List[Tuple[str, Term]] = field(default_factory=list)

    def observe(self, label: str, term: Term) -> None:
        self.observations.append((label, term))

    @property
    def labels(self) -> List[str]:
        return [label for label, _ in self.observations]

    @property
    def terms(self) -> List[Term]:
        return [term for _, term in self.observations]

    def knowledge(self, initial: Sequence[Term] = ()) -> Knowledge:
        knowledge = Knowledge(set(initial))
        knowledge.observe_all(self.terms)
        return knowledge

    def __len__(self) -> int:
        return len(self.observations)


@dataclass
class DistinguishabilityResult:
    """Verdict with the concrete distinguishing test, for attack reports."""

    distinguishable: bool
    test: str = ""

    def __bool__(self) -> bool:
        return self.distinguishable


def distinguishable(
    first: Frame,
    second: Frame,
    probe_terms: Sequence[Term] = (),
    initial_knowledge: Sequence[Term] = (),
) -> DistinguishabilityResult:
    """Can a Dolev-Yao adversary tell the two worlds apart?

    ``probe_terms`` are extra candidate terms for derivability tests
    (e.g. a victim's IMSI) beyond the frames' own contents.
    """
    # Test 1: response-type (label) sequences.
    if first.labels != second.labels:
        for index, (a, b) in enumerate(zip(first.labels, second.labels)):
            if a != b:
                return DistinguishabilityResult(
                    True, f"position {index}: {a!r} vs {b!r}")
        return DistinguishabilityResult(
            True, f"lengths differ: {len(first)} vs {len(second)}")

    # Test 2: pairwise equality of observed terms.
    for i in range(len(first)):
        for j in range(i + 1, len(first)):
            eq_first = first.terms[i] == first.terms[j]
            eq_second = second.terms[i] == second.terms[j]
            if eq_first != eq_second:
                world = "first" if eq_first else "second"
                return DistinguishabilityResult(
                    True,
                    f"test w{i} = w{j} holds only in {world} world")

    # Test 3: derivability of probe terms.  Only explicitly supplied
    # probes are tested: a DY adversary can only pose tests over terms it
    # can itself name (recipes over public data and prior knowledge), not
    # over the other world's secrets.
    knowledge_first = first.knowledge(initial_knowledge)
    knowledge_second = second.knowledge(initial_knowledge)
    for term in probe_terms:
        in_first = knowledge_first.can_construct(term)
        in_second = knowledge_second.can_construct(term)
        if in_first != in_second:
            world = "first" if in_first else "second"
            return DistinguishabilityResult(
                True, f"term {term} derivable only in {world} world")

    return DistinguishabilityResult(False, "no distinguishing test found")


def linkability_experiment(
    victim_responses: Sequence[Tuple[str, Term]],
    other_responses: Sequence[Tuple[str, Term]],
    probe_terms: Sequence[Term] = (),
) -> DistinguishabilityResult:
    """The P2-style experiment: replay a captured message to every UE in a
    cell and compare the victim's response frame with a bystander's."""
    victim_frame = Frame(list(victim_responses))
    other_frame = Frame(list(other_responses))
    return distinguishable(victim_frame, other_frame, probe_terms)
