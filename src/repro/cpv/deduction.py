"""Dolev-Yao deduction: what can the adversary derive?

The adversary (Section III-A threat model) controls the public channels:
it records every transmitted term and may construct new terms from its
knowledge, but "adheres to cryptographic assumptions, i.e., it can decrypt
a packet only if it has the keys".

:func:`saturate` computes the analysis closure of a knowledge set
(projecting pairs, decrypting when the key is derivable) and
:func:`can_derive` then answers synthesis queries recursively (build a
pair/encryption/MAC from derivable parts).  The two-phase decomposition/
composition algorithm is the standard decision procedure for the DY
intruder with this constructor set and is sound and complete for ground
terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set

from .terms import Atom, Hash, KDF, Mac, Pair, SEnc, Term


def saturate(knowledge: Iterable[Term]) -> Set[Term]:
    """Analysis closure: decompose everything decomposable.

    Pairs always split.  ``SEnc(p, k)`` yields ``p`` only once ``k`` is
    derivable from the current closure (fixpoint iteration handles keys
    that themselves come out of decrypted payloads).  MACs, hashes and
    KDFs are one-way and never decompose.
    """
    closure: Set[Term] = set(knowledge)
    changed = True
    while changed:
        changed = False
        for term in list(closure):
            if isinstance(term, Pair):
                for part in (term.left, term.right):
                    if part not in closure:
                        closure.add(part)
                        changed = True
            elif isinstance(term, SEnc):
                if (term.plaintext not in closure
                        and _synthesize(term.key, closure, set())):
                    closure.add(term.plaintext)
                    changed = True
    return closure


def _synthesize(goal: Term, closure: Set[Term],
                pending: Set[Term]) -> bool:
    """Can ``goal`` be composed from the (already saturated) closure?"""
    if goal in closure:
        return True
    if goal in pending:  # cycle guard (cannot build a term from itself)
        return False
    pending = pending | {goal}
    if isinstance(goal, Atom):
        return goal.public
    if isinstance(goal, Pair):
        return (_synthesize(goal.left, closure, pending)
                and _synthesize(goal.right, closure, pending))
    if isinstance(goal, SEnc):
        return (_synthesize(goal.plaintext, closure, pending)
                and _synthesize(goal.key, closure, pending))
    if isinstance(goal, Mac):
        return (_synthesize(goal.message, closure, pending)
                and _synthesize(goal.key, closure, pending))
    if isinstance(goal, Hash):
        return _synthesize(goal.body, closure, pending)
    if isinstance(goal, KDF):
        return (_synthesize(goal.base_key, closure, pending)
                and _synthesize(goal.context, closure, pending))
    return False


def can_derive(knowledge: Iterable[Term], goal: Term) -> bool:
    """Full DY derivability: analysis closure then goal-directed synthesis."""
    return _synthesize(goal, saturate(knowledge), set())


@dataclass
class Knowledge:
    """The adversary's evolving knowledge along a protocol trace.

    Incremental wrapper over :func:`saturate`/:func:`can_derive` used by
    the CEGAR feasibility checks: every message the model sends over a
    public channel is :meth:`observe`-d, and each adversarial injection in
    a counterexample becomes a :meth:`can_construct` query.
    """

    initial: Set[Term] = field(default_factory=set)

    def __post_init__(self):
        self._raw: Set[Term] = set(self.initial)
        self._closure: Optional[Set[Term]] = None

    def observe(self, term: Term) -> None:
        """Record a term transmitted on a public channel."""
        self._raw.add(term)
        self._closure = None

    def observe_all(self, terms: Iterable[Term]) -> None:
        for term in terms:
            self.observe(term)

    @property
    def closure(self) -> Set[Term]:
        if self._closure is None:
            self._closure = saturate(self._raw)
        return self._closure

    def can_construct(self, goal: Term) -> bool:
        return _synthesize(goal, self.closure, set())

    def knows_atom(self, atom: Atom) -> bool:
        """Secrecy check: has the raw secret leaked?"""
        return atom.public or atom in self.closure

    def observed(self) -> FrozenSet[Term]:
        return frozenset(self._raw)

    def copy(self) -> "Knowledge":
        duplicate = Knowledge(set(self._raw))
        return duplicate

    def __contains__(self, term: Term) -> bool:
        return self.can_construct(term)

    def __len__(self) -> int:
        return len(self._raw)
