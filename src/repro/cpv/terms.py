"""Symbolic term algebra for the Dolev-Yao protocol verifier.

This is the data layer of our ProVerif stand-in: protocol messages are
ground terms built from atoms (keys, nonces, identities, constants) with
the usual cryptographic constructors — pairing, symmetric encryption,
message authentication codes and hashing.  The adversary's reasoning over
these terms lives in :mod:`repro.cpv.deduction`.

Terms are immutable and hashable so knowledge sets are plain ``set``s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Set, Tuple

#: Atom kinds; ``public`` atoms are assumed derivable by everyone.
KIND_KEY = "key"
KIND_NONCE = "nonce"
KIND_IDENTITY = "identity"
KIND_CONST = "const"
KIND_DATA = "data"
_KINDS = (KIND_KEY, KIND_NONCE, KIND_IDENTITY, KIND_CONST, KIND_DATA)


class TermError(Exception):
    """Raised for structurally invalid terms."""


class Term:
    """Base class of all terms."""

    def subterms(self) -> Iterator["Term"]:
        """Yield this term and every (transitive) subterm."""
        raise NotImplementedError

    def atoms(self) -> Set["Atom"]:
        return {t for t in self.subterms() if isinstance(t, Atom)}

    def size(self) -> int:
        return sum(1 for _ in self.subterms())


@dataclass(frozen=True)
class Atom(Term):
    """An atomic value: key, nonce, identity, constant or data payload.

    ``public=True`` marks values known a priori to the adversary (message
    type tags, protocol constants, broadcast identities).
    """

    name: str
    kind: str = KIND_CONST
    public: bool = False

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise TermError(f"unknown atom kind {self.kind!r}")

    def subterms(self) -> Iterator[Term]:
        yield self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Pair(Term):
    """Concatenation/pairing of two terms (invertible by anyone)."""

    left: Term
    right: Term

    def subterms(self) -> Iterator[Term]:
        yield self
        yield from self.left.subterms()
        yield from self.right.subterms()

    def __str__(self) -> str:
        return f"<{self.left}, {self.right}>"


@dataclass(frozen=True)
class SEnc(Term):
    """Symmetric encryption: invertible only with the key."""

    plaintext: Term
    key: Term

    def subterms(self) -> Iterator[Term]:
        yield self
        yield from self.plaintext.subterms()
        yield from self.key.subterms()

    def __str__(self) -> str:
        return f"senc({self.plaintext}, {self.key})"


@dataclass(frozen=True)
class Mac(Term):
    """Message authentication code: one-way, verifiable with the key."""

    message: Term
    key: Term

    def subterms(self) -> Iterator[Term]:
        yield self
        yield from self.message.subterms()
        yield from self.key.subterms()

    def __str__(self) -> str:
        return f"mac({self.message}, {self.key})"


@dataclass(frozen=True)
class Hash(Term):
    """One-way hash."""

    body: Term

    def subterms(self) -> Iterator[Term]:
        yield self
        yield from self.body.subterms()

    def __str__(self) -> str:
        return f"h({self.body})"


@dataclass(frozen=True)
class KDF(Term):
    """Key derivation: ``kdf(base_key, context)`` — one-way in both args.

    Models KASME → K_NASenc / K_NASint derivation: knowing derived keys
    does not reveal the base key, and deriving requires the base key.
    """

    base_key: Term
    context: Term

    def subterms(self) -> Iterator[Term]:
        yield self
        yield from self.base_key.subterms()
        yield from self.context.subterms()

    def __str__(self) -> str:
        return f"kdf({self.base_key}, {self.context})"


def pair(*parts: Term) -> Term:
    """Right-nested pairing of two or more terms."""
    if not parts:
        raise TermError("pair() needs at least one term")
    if len(parts) == 1:
        return parts[0]
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Pair(part, result)
    return result


def unpair(term: Term) -> Tuple[Term, ...]:
    """Flatten right-nested pairs back into a tuple."""
    parts = []
    cursor = term
    while isinstance(cursor, Pair):
        parts.append(cursor.left)
        cursor = cursor.right
    parts.append(cursor)
    return tuple(parts)


def const(name: str) -> Atom:
    """A public protocol constant (message tags, field labels)."""
    return Atom(name, KIND_CONST, public=True)


def secret_key(name: str) -> Atom:
    return Atom(name, KIND_KEY, public=False)


def nonce(name: str) -> Atom:
    return Atom(name, KIND_NONCE, public=False)


def identity(name: str, public: bool = False) -> Atom:
    return Atom(name, KIND_IDENTITY, public=public)
