"""Protocol traces and events for the verifier's queries.

A :class:`ProtocolTrace` is a linear record of what happened on the public
channels: sends, receives, and *claim events* (e.g. "UE completed
authentication with nonce N") used by correspondence queries.  The CEGAR
bridge replays model-checker counterexamples into traces of this form, and
the query layer (:mod:`repro.cpv.queries`) interrogates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from .deduction import Knowledge
from .terms import Term

EVENT_SEND = "send"
EVENT_RECV = "recv"
EVENT_CLAIM = "claim"
_EVENT_KINDS = (EVENT_SEND, EVENT_RECV, EVENT_CLAIM)


class ProtocolError(Exception):
    """Raised for malformed protocol traces."""


@dataclass(frozen=True)
class Event:
    """One trace entry.

    ``label`` names the protocol step (e.g. ``authentication_request``);
    ``principal`` is the acting party (``ue``, ``mme``, ``adversary``);
    ``term`` is the message (or claim payload) as a DY term.
    """

    kind: str
    principal: str
    label: str
    term: Optional[Term] = None

    def __post_init__(self):
        if self.kind not in _EVENT_KINDS:
            raise ProtocolError(f"unknown event kind {self.kind!r}")
        if self.kind in (EVENT_SEND, EVENT_RECV) and self.term is None:
            raise ProtocolError(f"{self.kind} event requires a term")


@dataclass
class ProtocolTrace:
    """A linear protocol execution as seen on the public channels."""

    events: List[Event] = field(default_factory=list)

    def send(self, principal: str, label: str, term: Term) -> Event:
        event = Event(EVENT_SEND, principal, label, term)
        self.events.append(event)
        return event

    def recv(self, principal: str, label: str, term: Term) -> Event:
        event = Event(EVENT_RECV, principal, label, term)
        self.events.append(event)
        return event

    def claim(self, principal: str, label: str,
              term: Optional[Term] = None) -> Event:
        event = Event(EVENT_CLAIM, principal, label, term)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def adversary_knowledge(self, initial: Sequence[Term] = ()) -> Knowledge:
        """Everything the adversary saw on the channel up to trace end."""
        knowledge = Knowledge(set(initial))
        for event in self.events:
            if event.kind == EVENT_SEND and event.term is not None:
                knowledge.observe(event.term)
        return knowledge

    def knowledge_before(self, index: int,
                         initial: Sequence[Term] = ()) -> Knowledge:
        """Adversary knowledge strictly before ``events[index]``."""
        knowledge = Knowledge(set(initial))
        for event in self.events[:index]:
            if event.kind == EVENT_SEND and event.term is not None:
                knowledge.observe(event.term)
        return knowledge

    def find(self, predicate: Callable[[Event], bool]) -> Iterator[int]:
        for index, event in enumerate(self.events):
            if predicate(event):
                yield index

    def labels(self) -> List[str]:
        return [event.label for event in self.events]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
