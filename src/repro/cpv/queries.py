"""Verifier queries: secrecy, correspondence and adversarial feasibility.

These are the three query shapes ProChecker poses to the CPV:

- **Secrecy** (``query attacker(x)`` in ProVerif): after the trace, can the
  adversary derive a secret term?  Used by the privacy properties (IMSI
  leakage, key secrecy).
- **Correspondence** (``event(e2) ==> event(e1)``): every occurrence of a
  claim event is preceded by its matching cause.  Used by authenticity
  properties.
- **Feasibility** — the CEGAR question: *"for each adversary action in the
  model checker's counterexample, is the action cryptographically
  feasible?"* (Section IV-B).  Dropping is always feasible; replaying
  needs the exact term to have been observed; injecting/modifying needs
  the adversary to synthesise the term from its knowledge at that point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from .deduction import Knowledge
from .protocol import EVENT_CLAIM, ProtocolTrace
from .terms import Term

#: Adversary action verbs recognised by the feasibility check.
ACTION_DROP = "drop"
ACTION_PASS = "pass"
ACTION_REPLAY = "replay"
ACTION_INJECT = "inject"
ACTION_MODIFY = "modify"
ACTION_SNIFF = "sniff"


@dataclass
class QueryResult:
    """Outcome of any CPV query."""

    query: str
    satisfied: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.satisfied


def check_secrecy(trace: ProtocolTrace, secret: Term,
                  initial_knowledge: Sequence[Term] = ()) -> QueryResult:
    """Does the secret stay out of the adversary's derivable knowledge?"""
    obs.inc("cpv.queries.secrecy")
    knowledge = trace.adversary_knowledge(initial_knowledge)
    leaked = knowledge.can_construct(secret)
    return QueryResult(
        query=f"secrecy({secret})",
        satisfied=not leaked,
        reason="adversary derives the term" if leaked
        else "term underivable from observed traffic",
    )


def check_correspondence(trace: ProtocolTrace, consequent_label: str,
                         antecedent_label: str,
                         injective: bool = False) -> QueryResult:
    """``event(consequent) ==> event(antecedent)`` over the trace.

    With ``injective=True`` each consequent needs its *own* earlier
    antecedent (no reuse) — the stock formulation of replay freedom.
    """
    obs.inc("cpv.queries.correspondence")
    used: List[int] = []
    for index, event in enumerate(trace.events):
        if event.label != consequent_label or event.kind != EVENT_CLAIM:
            continue
        candidates = [
            i for i in range(index)
            if trace.events[i].label == antecedent_label
            and (not injective or i not in used)
            and (event.term is None or trace.events[i].term == event.term)
        ]
        if not candidates:
            kind = "injective " if injective else ""
            return QueryResult(
                query=f"{consequent_label} ==> {antecedent_label}",
                satisfied=False,
                reason=f"{kind}correspondence broken at event {index}",
            )
        used.append(candidates[-1])
    return QueryResult(
        query=f"{consequent_label} ==> {antecedent_label}",
        satisfied=True,
        reason="every claim has a preceding matching cause",
    )


@dataclass
class AdversaryAction:
    """One adversarial step lifted from a model-checker counterexample."""

    verb: str
    message_label: str
    term: Optional[Term] = None

    def describe(self) -> str:
        return f"{self.verb}({self.message_label})"


@dataclass
class FeasibilityVerdict:
    """Per-action feasibility decisions for one counterexample."""

    actions: List[AdversaryAction] = field(default_factory=list)
    verdicts: List[QueryResult] = field(default_factory=list)

    @property
    def all_feasible(self) -> bool:
        return all(v.satisfied for v in self.verdicts)

    def first_infeasible(self) -> Optional[AdversaryAction]:
        for action, verdict in zip(self.actions, self.verdicts):
            if not verdict.satisfied:
                return action
        return None


def check_action_feasible(action: AdversaryAction,
                          knowledge: Knowledge) -> QueryResult:
    """Is a single adversary action consistent with the DY assumptions?"""
    obs.inc("cpv.queries.feasibility")
    query = f"feasible({action.describe()})"
    if action.verb in (ACTION_DROP, ACTION_PASS, ACTION_SNIFF):
        return QueryResult(query, True, "channel control suffices")
    if action.verb == ACTION_REPLAY:
        if action.term is None:
            return QueryResult(query, False, "nothing captured to replay")
        if action.term in knowledge.observed():
            return QueryResult(query, True, "term previously captured")
        return QueryResult(query, False, "term never observed on channel")
    if action.verb in (ACTION_INJECT, ACTION_MODIFY):
        if action.term is None:
            return QueryResult(query, False, "no target term")
        if knowledge.can_construct(action.term):
            return QueryResult(query, True,
                               "term synthesisable from knowledge")
        return QueryResult(
            query, False,
            "term requires keys/nonces the adversary cannot derive")
    return QueryResult(query, False, f"unknown verb {action.verb!r}")


def check_counterexample_feasibility(
    actions: Sequence[AdversaryAction],
    trace: ProtocolTrace,
    initial_knowledge: Sequence[Term] = (),
) -> FeasibilityVerdict:
    """Validate every adversarial step of a counterexample (CEGAR step 4).

    ``trace`` must interleave the honest sends with the adversary actions;
    each action is judged against the knowledge accumulated *before* it.
    The trace convention: adversary actions appear as claim events labelled
    ``adv:<verb>:<message>`` emitted by the CEGAR bridge, so knowledge is
    cut at each such marker.
    """
    verdict = FeasibilityVerdict()
    markers = [i for i, e in enumerate(trace.events)
               if e.kind == EVENT_CLAIM and e.label.startswith("adv:")]
    for position, action in enumerate(actions):
        if position < len(markers):
            knowledge = trace.knowledge_before(markers[position],
                                               initial_knowledge)
        else:
            knowledge = trace.adversary_knowledge(initial_knowledge)
        verdict.actions.append(action)
        verdict.verdicts.append(check_action_feasible(action, knowledge))
    return verdict
