"""Pluggable trace sinks: JSONL file, human summary, in-memory.

A sink consumes flat *records* (plain dicts).  :func:`iter_records`
flattens a span forest into ``{"type": "span", ...}`` records —
parent/child structure is preserved through ``span_id``/``parent_id``
and ``depth`` — optionally followed by one ``{"type":
"pipeline_stats"}`` record carrying the aggregated stats block.

When no sink is attached nothing here runs: spans and metrics are
recorded in memory either way (cheap — a handful of objects per
property next to seconds of model checking), and emission is the only
I/O the observability layer ever performs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence

from .spans import Span
from .stats import PipelineStats


def iter_records(roots: Sequence[Span],
                 stats: Optional[PipelineStats] = None) -> Iterator[Dict]:
    """Flatten a span forest (plus optional stats) into sink records."""
    next_id = 0
    for root in roots:
        origin = root.started
        ids: Dict[int, int] = {}
        parents = {id(root): None}
        for child_span, _ in root.walk():
            for child in child_span.children:
                parents[id(child)] = id(child_span)
        for span, depth in root.walk():
            ids[id(span)] = next_id
            parent_key = parents.get(id(span))
            yield {
                "type": "span",
                "span_id": next_id,
                "parent_id": (ids[parent_key]
                              if parent_key is not None else None),
                "depth": depth,
                "name": span.name,
                "attributes": dict(span.attributes),
                "offset": span.started - origin,
                "duration": span.duration,
                "counters": dict(span.counters),
            }
            next_id += 1
    if stats is not None:
        yield {"type": "pipeline_stats", "stats": stats.to_dict()}


class JsonlTraceSink:
    """Writes one JSON object per line; the trace-file sink."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w")
        self.records_written = 0

    def emit(self, record: Dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True,
                                      default=str))
        self._handle.write("\n")
        self.records_written += 1

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySink:
    """Collects records in a list; the test double."""

    def __init__(self):
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def spans(self) -> List[Dict]:
        return [r for r in self.records if r.get("type") == "span"]


class SummarySink:
    """Renders the human summary table for any stats records seen."""

    def __init__(self, stream):
        self.stream = stream

    def emit(self, record: Dict) -> None:
        if record.get("type") == "pipeline_stats":
            stats = PipelineStats.from_dict(record["stats"])
            print(stats.format_table(), file=self.stream)

    def close(self) -> None:
        pass


def write_trace(path: str, roots: Sequence[Span],
                stats: Optional[PipelineStats] = None) -> int:
    """Flatten ``roots`` (+ stats) into a JSONL trace file at ``path``."""
    with JsonlTraceSink(path) as sink:
        for record in iter_records(roots, stats):
            sink.emit(record)
        return sink.records_written


def read_trace(path: str) -> List[Dict]:
    """Load every record from a JSONL trace file."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
