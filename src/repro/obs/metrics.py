"""Process-safe metrics registry: counters, gauges, histograms.

Each process owns one :class:`MetricsRegistry` (workers get a fresh one
from the pool initializer); instruments are thread-safe within a process
and cross the pool boundary as plain-dict snapshots that merge
*commutatively* — counters and histogram bins sum, gauges take the max —
so the aggregate is identical regardless of worker scheduling.

The registry is the *runtime* layer of the observability design: cache
hit rates, models built, worker utilisation — quantities that legitimately
vary with ``--jobs`` and cache warmth.  Scheduling-invariant counts
travel on spans instead (:mod:`repro.obs.spans`) and are aggregated into
the deterministic block of :class:`repro.obs.stats.PipelineStats`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (values above fall in +Inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """Monotonically increasing count; merges by summation."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, value: float = 1) -> None:
        self.value += value


class Gauge:
    """High-water-mark gauge; merges by maximum.

    The max-merge is what keeps multi-worker aggregation well-defined:
    "largest Büchi product seen" means the same thing however the
    properties were scheduled.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def record(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram; merges by per-bucket summation."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> Dict:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "total": self.total, "count": self.count}


class MetricsRegistry:
    """Named instruments behind one lock, snapshot/merge-friendly."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS)
            return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-dict copy of every instrument (pickles cheaply)."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in self._counters.items()},
                "gauges": {name: g.value
                           for name, g in self._gauges.items()},
                "histograms": {name: h.to_dict()
                               for name, h in self._histograms.items()},
            }

    def drain(self) -> Dict:
        """Snapshot then reset — how workers ship per-group deltas."""
        with self._lock:
            payload = {
                "counters": {name: c.value
                             for name, c in self._counters.items()},
                "gauges": {name: g.value
                           for name, g in self._gauges.items()},
                "histograms": {name: h.to_dict()
                               for name, h in self._histograms.items()},
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return payload

    def merge(self, payload: Dict) -> None:
        """Fold a snapshot in: counters/bins sum, gauges take the max."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).record(value)
        for name, data in payload.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            if tuple(data["buckets"]) != histogram.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch on merge")
            with self._lock:
                for i, count in enumerate(data["counts"]):
                    histogram.counts[i] += count
                histogram.total += data["total"]
                histogram.count += data["count"]


def diff_snapshots(before: Dict, after: Dict) -> Dict:
    """The registry activity between two snapshots of one registry.

    Counters and histogram bins subtract; gauges report their ``after``
    value (a high-water mark has no meaningful delta).
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()}
    counters = {name: value for name, value in counters.items() if value}
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(
            name, {"counts": [0] * len(data["counts"]),
                   "total": 0.0, "count": 0})
        delta_counts: List[float] = [
            count - prior["counts"][i]
            for i, count in enumerate(data["counts"])]
        if any(delta_counts):
            histograms[name] = {
                "buckets": list(data["buckets"]),
                "counts": delta_counts,
                "total": data["total"] - prior["total"],
                "count": data["count"] - prior["count"],
            }
    return {"counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms}
