"""Hierarchical spans: the tracing half of the observability layer.

A :class:`Span` is one timed region of the pipeline — a conformance run,
an Algorithm 1 extraction, one CEGAR loop, one model-checker query — with
a name, free-form attributes, monotonic start/duration, counters recorded
while it was innermost, and child spans.  :class:`Tracer` maintains a
per-thread stack of open spans so nesting falls out of lexical ``with``
structure::

    with tracer.span("cegar", property="SEC-01") as sp:
        with tracer.span("mc.check"):
            tracer.inc("mc.states_explored", 42)
    sp.duration   # seconds, monotonic clock

Spans cross the process-pool boundary as plain dicts
(:meth:`Span.to_dict` / :meth:`Span.from_dict`): a worker finishes its
spans as roots, the parent :meth:`Tracer.adopt`\\ s them under its
currently open span, and the reassembled trace is keyed by the
``property`` attribute the engine stamps on every verification span.
Timing inside an adopted subtree is internally consistent (offsets are
relative to the subtree root); durations are always comparable.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Attribute key the engine stamps on per-property verification spans.
ATTR_PROPERTY = "property"


class Span:
    """One finished (or still-open) timed region of the pipeline."""

    __slots__ = ("name", "attributes", "started", "duration", "children",
                 "counters")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, object]] = None,
                 started: float = 0.0, duration: float = 0.0):
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.started = started
        self.duration = duration
        self.children: List["Span"] = []
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first traversal yielding ``(span, depth)`` pairs."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree (self included)."""
        return [span for span, _ in self.walk() if span.name == name]

    def total_counters(self) -> Dict[str, float]:
        """Counters summed over the whole subtree (commutative rollup)."""
        totals: Dict[str, float] = {}
        for span, _ in self.walk():
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    def to_dict(self, origin: Optional[float] = None) -> Dict:
        """Nested dict form; offsets are relative to the subtree root."""
        if origin is None:
            origin = self.started
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "offset": self.started - origin,
            "duration": self.duration,
            "counters": dict(self.counters),
            "children": [child.to_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        span = cls(payload["name"], payload.get("attributes"),
                   started=payload.get("offset", 0.0),
                   duration=payload.get("duration", 0.0))
        span.counters = dict(payload.get("counters", {}))
        span.children = [cls.from_dict(child)
                         for child in payload.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.attributes}, "
                f"{self.duration:.6f}s, {len(self.children)} children)")


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span.started = self._tracer._clock()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration = self._tracer._clock() - self.span.started
        self._tracer._pop(self.span)
        return None


class Tracer:
    """Per-process span recorder with per-thread nesting stacks.

    Finished top-level spans accumulate as *roots* until drained (by a
    pool worker shipping them home, a CLI sink writing the trace, or a
    test inspecting them).  The root buffer is bounded so a long-lived
    process that never drains cannot leak unboundedly.
    """

    MAX_ROOTS = 64

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        assert stack and stack[-1] is span, "unbalanced span exit"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._add_root(span)

    def _add_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)
            if len(self._roots) > self.MAX_ROOTS:
                del self._roots[:len(self._roots) - self.MAX_ROOTS]

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a child of the current span (or a new root)."""
        return _SpanContext(self, Span(name, attributes))

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a counter on the innermost open span."""
        span = self.current()
        if span is not None:
            span.counters[name] = span.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    def adopt(self, span: Span) -> None:
        """Graft a finished span (e.g. from a pool worker) into the trace.

        Attached as a child of this thread's current span when one is
        open, otherwise kept as a root.
        """
        current = self.current()
        if current is not None:
            current.children.append(span)
        else:
            self._add_root(span)

    def drain(self) -> List[Span]:
        """Remove and return every finished root span."""
        with self._lock:
            roots, self._roots = self._roots, []
        return roots

    def peek_roots(self) -> List[Span]:
        """Finished roots without draining (tests, summaries)."""
        with self._lock:
            return list(self._roots)
