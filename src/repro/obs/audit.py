"""Trace-completeness audit: ``python -m repro.obs.audit trace.jsonl``.

Fails (exit 2) when any required pipeline phase is missing from the
trace — the CI guard against new pipeline code that silently escapes
instrumentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .stats import REQUIRED_PHASES, audit_trace, trace_phase_names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.audit",
        description="verify a JSONL pipeline trace covers every phase")
    parser.add_argument("trace", help="path to the trace.jsonl file")
    parser.add_argument("--require", action="append", default=None,
                        metavar="PHASE",
                        help="override the required phase set "
                             "(repeatable)")
    args = parser.parse_args(argv)

    required = args.require if args.require else sorted(REQUIRED_PHASES)
    missing = audit_trace(args.trace, required)
    present = trace_phase_names(args.trace)
    print(f"{args.trace}: {len(present)} distinct span names")
    if missing:
        print("missing pipeline phases:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 2
    print(f"all {len(required)} required phases present")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
