"""``repro.obs`` — the pipeline-wide observability layer.

Dependency-free tracing, metrics and profiling hooks threaded through
every ProChecker phase (conformance execution, Algorithm 1 extraction,
threat instrumentation, the CEGAR loop, model checking, CPV queries).

Two recording layers with different determinism guarantees:

- **spans** (:func:`span`, :func:`inc`) — hierarchical timed regions
  with counters attached to the innermost open span.  Counters recorded
  inside a per-property verification span are scheduling-invariant and
  feed the canonical block of
  :class:`~repro.obs.stats.PipelineStats`;
- **registry metrics** (:func:`count`, :func:`gauge_max`,
  :func:`observe`) — process-wide counters/gauges/histograms for
  quantities that legitimately vary with ``--jobs`` and cache warmth
  (cache hit rates, models built, per-worker utilisation).

Both cross the process-pool boundary explicitly: workers
:func:`reset` themselves, record, then ship ``drain_spans()`` payloads
and ``metrics().drain()`` snapshots home, where the engine adopts the
spans under its open phase span and merges the snapshots — so the
reassembled trace is one tree keyed by property id, whatever the
worker scheduling was.

The module-level functions operate on one process-global
:class:`Observatory`; tests that need isolation construct their own
:class:`~repro.obs.spans.Tracer` / registry, or call :func:`reset`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      diff_snapshots)
from .sinks import (InMemorySink, JsonlTraceSink, SummarySink, iter_records,
                    read_trace, write_trace)
from .spans import ATTR_PROPERTY, Span, Tracer
from .stats import (PROPERTY_SPAN, REQUIRED_PHASES, PipelineStats,
                    audit_trace, trace_phase_names)

__all__ = [
    "ATTR_PROPERTY", "Counter", "Gauge", "Histogram", "InMemorySink",
    "JsonlTraceSink", "MetricsRegistry", "Observatory", "PROPERTY_SPAN",
    "PipelineStats", "REQUIRED_PHASES", "Span", "SummarySink", "Tracer",
    "adopt_spans", "audit_trace", "count", "diff_snapshots",
    "drain_spans", "gauge_max", "get_observatory", "inc", "iter_records",
    "metrics", "observe", "read_trace", "reset", "span",
    "trace_phase_names", "tracer", "write_trace",
]


class Observatory:
    """One process's tracer + metrics registry."""

    def __init__(self):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()


_lock = threading.Lock()
_observatory = Observatory()


def get_observatory() -> Observatory:
    return _observatory


def reset() -> Observatory:
    """Fresh tracer and registry (pool workers, test isolation)."""
    global _observatory
    with _lock:
        _observatory = Observatory()
    return _observatory


def tracer() -> Tracer:
    return _observatory.tracer


def metrics() -> MetricsRegistry:
    return _observatory.metrics


# ---------------------------------------------------------------------------
# Span layer (deterministic)
# ---------------------------------------------------------------------------
def span(name: str, **attributes):
    """Open a span on the current thread: ``with obs.span("cegar", ...)``."""
    return _observatory.tracer.span(name, **attributes)


def inc(name: str, value: float = 1) -> None:
    """Span-scoped counter: lands on the innermost open span (and rolls
    up into the enclosing property span's deterministic stats).  Also
    mirrored into the registry so process-wide totals stay queryable
    even for work done outside any span."""
    _observatory.tracer.inc(name, value)
    _observatory.metrics.counter(name).inc(value)


def drain_spans() -> List[Span]:
    """Remove and return every finished root span of this process."""
    return _observatory.tracer.drain()


def adopt_spans(payloads: Sequence[Dict]) -> None:
    """Graft serialized worker spans into the current trace position."""
    for payload in payloads:
        _observatory.tracer.adopt(Span.from_dict(payload))


# ---------------------------------------------------------------------------
# Registry layer (runtime / scheduling-dependent)
# ---------------------------------------------------------------------------
def count(name: str, value: float = 1) -> None:
    """Registry-only counter (cache hits, models built, ...)."""
    _observatory.metrics.counter(name).inc(value)


def gauge_max(name: str, value: float) -> None:
    """High-water-mark gauge (largest Büchi product, ...)."""
    _observatory.metrics.gauge(name).record(value)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    """Histogram observation (per-property seconds, states per check)."""
    _observatory.metrics.histogram(name, buckets).observe(value)
