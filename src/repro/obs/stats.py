"""Aggregated pipeline statistics and the trace-completeness audit.

:class:`PipelineStats` is the block embedded in every
:class:`~repro.core.report.AnalysisReport`: per-phase span counts and
wall-clock, per-property counters reassembled from the trace (keyed by
property id), their catalog-wide totals, verdict tallies, and the
runtime metrics snapshot (cache hit rates, models built, per-worker
utilisation).

Determinism contract: the **canonical** projection
(:meth:`PipelineStats.canonical_dict` / :meth:`canonical_json`) contains
only scheduling-invariant data — per-property counters, their sums and
the verdict tallies.  Every counter in it is recorded on the span tree
*inside* a per-property verification span, and each property's
verification is a pure function of ``(UE FSM, MME model, property)``, so
a ``--jobs 4`` run serialises byte-identically to a ``--jobs 1`` run.
Wall-clock, cache-warmth effects (models built, hits) and worker
utilisation live in the observed ``phases``/``runtime`` blocks, which
are reported but excluded from the canonical form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .. import schema
from .spans import ATTR_PROPERTY, Span

#: Span name of the per-property unit of work the engine schedules.
PROPERTY_SPAN = "verify.property"

#: Span names every full pipeline run must exhibit — the CI audit fails
#: if any is missing from an emitted trace, which guards against new
#: pipeline code silently escaping instrumentation.
REQUIRED_PHASES = frozenset({
    "pipeline.analyze",      # end-to-end run
    "pipeline.extract",      # stage 1+2 dispatch (cache-aware)
    "conformance.run",       # instrumented conformance execution
    "extraction.extract",    # Algorithm 1
    "pipeline.verify",       # check-phase fan-out
    PROPERTY_SPAN,           # one per property
    "cegar",                 # MC <-> CPV refinement loop
    "threat.instrument",     # adversarial model construction
    "mc.check",              # model-checker queries
    "cpv.validate",          # counterexample feasibility
})


@dataclass
class PipelineStats:
    """Aggregated observability data for one analysis run."""

    implementation: str = ""
    jobs: int = 1
    #: per-property counters, reassembled from the trace (property id ->
    #: counter name -> value); scheduling-invariant
    properties: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: catalog-wide sums of the per-property counters
    totals: Dict[str, float] = field(default_factory=dict)
    #: verdict tallies ("verified"/"violated"/"not-applicable" -> count)
    verdicts: Dict[str, int] = field(default_factory=dict)
    #: per-phase observation: span name -> {"count", "seconds"}
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: runtime metrics (registry delta, worker utilisation, wall-clock)
    runtime: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def collect(cls, root: Span, results: Sequence,
                implementation: str, jobs: int,
                metrics: Optional[Dict] = None) -> "PipelineStats":
        """Build the stats block from one analysis' span tree.

        ``results`` are the run's ``PropertyResult``\\ s (duck-typed);
        property spans belonging to other implementations (an
        ``analyze_many`` batch shares one tree) are filtered out by
        their ``implementation`` attribute.
        """
        stats = cls(implementation=implementation, jobs=jobs)
        for span, _depth in root.walk():
            phase = stats.phases.setdefault(
                span.name, {"count": 0, "seconds": 0.0})
            phase["count"] += 1
            phase["seconds"] += span.duration
            if span.name != PROPERTY_SPAN:
                continue
            owner = span.attributes.get("implementation", implementation)
            if owner != implementation:
                continue
            identifier = str(span.attributes.get(ATTR_PROPERTY, "?"))
            rollup = span.total_counters()
            stats.properties[identifier] = {
                name: rollup[name] for name in sorted(rollup)}
        for counters in stats.properties.values():
            for name, value in counters.items():
                stats.totals[name] = stats.totals.get(name, 0) + value
        for result in results:
            verdict = result.outcome.value
            stats.verdicts[verdict] = stats.verdicts.get(verdict, 0) + 1
        stats.runtime = {
            "elapsed_seconds": root.duration,
            "metrics": metrics or {},
            "workers": _worker_utilisation(results),
        }
        return stats

    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict:
        """The scheduling-invariant projection (see module docstring)."""
        return {
            "implementation": self.implementation,
            "properties": {identifier: dict(counters)
                           for identifier, counters
                           in sorted(self.properties.items())},
            "totals": dict(sorted(self.totals.items())),
            "verdicts": dict(sorted(self.verdicts.items())),
        }

    def canonical_json(self) -> str:
        """Byte-comparable form: identical across ``--jobs`` widths."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return schema.stamp({
            "implementation": self.implementation,
            "jobs": self.jobs,
            "properties": {identifier: dict(counters)
                           for identifier, counters
                           in self.properties.items()},
            "totals": dict(self.totals),
            "verdicts": dict(self.verdicts),
            "phases": {name: dict(data)
                       for name, data in self.phases.items()},
            "runtime": self.runtime,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineStats":
        schema.check(payload, "PipelineStats")
        return cls(
            implementation=payload.get("implementation", ""),
            jobs=payload.get("jobs", 1),
            properties={identifier: dict(counters)
                        for identifier, counters
                        in payload.get("properties", {}).items()},
            totals=dict(payload.get("totals", {})),
            verdicts=dict(payload.get("verdicts", {})),
            phases={name: dict(data)
                    for name, data in payload.get("phases", {}).items()},
            runtime=dict(payload.get("runtime", {})),
        )

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """The human summary: phases, hot counters, cache behaviour."""
        lines = [f"pipeline profile — {self.implementation} "
                 f"({self.jobs} worker(s), "
                 f"{self.runtime.get('elapsed_seconds', 0.0):.2f}s)"]
        lines.append(f"  {'phase':<22} {'count':>7} {'seconds':>9}")
        order = sorted(self.phases,
                       key=lambda name: -self.phases[name]["seconds"])
        for name in order:
            data = self.phases[name]
            lines.append(f"  {name:<22} {int(data['count']):>7} "
                         f"{data['seconds']:>9.3f}")
        if self.totals:
            lines.append("  counters:")
            for name, value in sorted(self.totals.items()):
                lines.append(f"    {name:<28} {value:>12g}")
        if self.verdicts:
            tally = ", ".join(f"{count} {verdict}" for verdict, count
                              in sorted(self.verdicts.items()))
            lines.append(f"  verdicts: {tally}")
        counters = self.runtime.get("metrics", {}).get("counters", {})
        if counters:
            lines.append("  runtime counters:")
            for name, value in sorted(counters.items()):
                lines.append(f"    {name:<28} {value:>12g}")
        workers = self.runtime.get("workers", {})
        if workers:
            lines.append("  workers:")
            for name, data in sorted(workers.items()):
                lines.append(f"    {name:<20} "
                             f"{int(data['properties']):>3} properties "
                             f"{data['busy_seconds']:>8.3f}s busy")
        return "\n".join(lines)


def _worker_utilisation(results: Iterable) -> Dict[str, Dict[str, float]]:
    workers: Dict[str, Dict[str, float]] = {}
    for result in results:
        name = getattr(result, "worker", "") or "unknown"
        entry = workers.setdefault(
            name, {"properties": 0, "busy_seconds": 0.0})
        entry["properties"] += 1
        entry["busy_seconds"] += getattr(result, "elapsed_seconds", 0.0)
    return workers


# ---------------------------------------------------------------------------
# Trace audit
# ---------------------------------------------------------------------------
def trace_phase_names(path: str) -> Set[str]:
    """Distinct span names appearing in a JSONL trace file."""
    names: Set[str] = set()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "span":
                names.add(record["name"])
    return names


def audit_trace(path: str,
                required: Iterable[str] = REQUIRED_PHASES) -> List[str]:
    """Names from ``required`` missing from the trace (empty = healthy)."""
    present = trace_phase_names(path)
    return sorted(set(required) - present)
