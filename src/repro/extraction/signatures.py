"""Signature tables: the standards-to-implementation mapping (Section IV-A.4).

The extractor needs three signature sets: protocol *state* names (used
verbatim by implementations, per the paper's interoperability insight),
*incoming*-message handler signatures and *outgoing*-message handler
signatures (the ``send_``/``parse_``/``emm_recv_`` prefix conventions).
:func:`table_for_implementation` derives the whole table from an
implementation class — the "one-time manual intervention" the paper
describes, automated here because our implementations declare their
prefix style.

Internal (non-message) events — power-on, UE-initiated detach/TAU — map to
``internal_*`` conditions so UE-originated transitions are extractable too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..lte import constants as c

#: Local variables lifted from the log into transition guard predicates
#: ("the condition variables used in the sanity checking are local
#: variables; we obtain their values from the information-rich log").
DEFAULT_CONDITION_VARIABLES = (
    "mac_valid", "replay_ok", "plain_hdr",
    "count_higher", "count_last",
    "sqn_fresh", "sqn_in_window", "sqn_equal", "algo_ok",
    "paging_match", "accept",
)

#: UE-internal triggers: method name -> canonical condition.
INTERNAL_TRIGGERS = {
    "power_on": "internal_power_on",
    "initiate_detach": "internal_detach",
    "initiate_tau": "internal_tau",
    "send_nas_payload": "internal_uplink_data",
}


@dataclass(frozen=True)
class SignatureTable:
    """Everything Algorithm 1 needs to interpret a log."""

    #: exact state values recognised in GLOBAL <state_variable>=... lines
    state_signatures: Tuple[str, ...]
    #: the global variable holding the protocol state
    state_variable: str
    #: function-entrance name -> canonical incoming condition
    incoming_signatures: Dict[str, str]
    #: function-entrance name -> canonical outgoing action
    outgoing_signatures: Dict[str, str]
    #: LOCAL variable names lifted into guard predicates
    condition_variables: Tuple[str, ...] = DEFAULT_CONDITION_VARIABLES
    #: the machine's initial state
    initial_state: str = c.EMM_DEREGISTERED

    def incoming_condition(self, function_name: str) -> str:
        return self.incoming_signatures.get(function_name, "")

    def outgoing_action(self, function_name: str) -> str:
        return self.outgoing_signatures.get(function_name, "")


def table_for_implementation(ue_class) -> SignatureTable:
    """Build the signature table from an implementation's naming style."""
    incoming: Dict[str, str] = {}
    for message in c.DOWNLINK_MESSAGES:
        incoming[ue_class.RECV_PREFIX + message] = message
    incoming.update(INTERNAL_TRIGGERS)

    outgoing: Dict[str, str] = {}
    for message in c.UPLINK_MESSAGES:
        outgoing[ue_class.SEND_PREFIX + message] = message

    return SignatureTable(
        state_signatures=tuple(c.UE_STATES),
        state_variable="emm_state",
        incoming_signatures=incoming,
        outgoing_signatures=outgoing,
    )


def mme_table() -> SignatureTable:
    """Signature table for extracting the MME side (testbed MME)."""
    incoming = {("recv_" + message): message
                for message in c.UPLINK_MESSAGES}
    incoming.update({
        "initiate_guti_reallocation": "internal_guti_reallocation",
        "initiate_paging": "internal_paging",
        "initiate_detach": "internal_detach",
    })
    outgoing = {("send_" + message): message
                for message in c.DOWNLINK_MESSAGES}
    return SignatureTable(
        state_signatures=tuple(c.MME_STATES),
        state_variable="emm_state",
        incoming_signatures=incoming,
        outgoing_signatures=outgoing,
        condition_variables=(),
        initial_state=c.MME_DEREGISTERED,
    )
