"""FSM extraction from instrumented execution logs (Algorithm 1).

- :mod:`repro.extraction.signatures` — the standards/implementation
  signature tables (state names, handler prefixes, condition variables);
- :mod:`repro.extraction.extractor` — block division and transition
  reconstruction;
- :mod:`repro.extraction.consensus` — noise-tolerant multi-run
  extraction under chaos-perturbed radio links.
"""

from .signatures import (DEFAULT_CONDITION_VARIABLES, INTERNAL_TRIGGERS,
                         SignatureTable, mme_table,
                         table_for_implementation)
from .extractor import (ExtractionStats, ModelExtractor, divide_blocks,
                        extract_model)
from .consensus import (ConsensusError, ConsensusExtraction,
                        StabilityReport, TransitionSupport,
                        consensus_extract, merge_with_support)

__all__ = [
    "DEFAULT_CONDITION_VARIABLES", "INTERNAL_TRIGGERS", "SignatureTable",
    "mme_table", "table_for_implementation",
    "ExtractionStats", "ModelExtractor", "divide_blocks", "extract_model",
    "ConsensusError", "ConsensusExtraction", "StabilityReport",
    "TransitionSupport", "consensus_extract", "merge_with_support",
]
