"""The ProChecker model extractor (Algorithm 1).

Input: the information-rich execution log, plus the signature table
(state names, incoming/outgoing message signatures).  Output: the
implementation's FSM ``(Sigma, Gamma, S, s0, T)``.

Faithful to the paper's Algorithm 1:

1. ``DivideBlock`` — the log is split into blocks at every function
   entrance matching an *incoming* signature (each block is one protocol
   stimulus and the implementation's complete reaction to it);
2. within a block, the first state signature is the incoming state and
   the last one the outgoing state (lines 4-11);
3. lines matching incoming signatures contribute the condition, lines
   matching outgoing signatures the actions (lines 13-18);
4. if no action was observed the transition records ``null_action``
   (lines 20-21);
5. the transition tuple is appended to ``FSM.T`` (line 22).

Enrichment per Section IV-A(3): designated *condition variables* (MAC
validity, replay check, SQN freshness flags — sanity-check locals) are
lifted from LOCAL lines into guard predicates, which is what makes the
extracted model a strict refinement of hand-built ones (RQ2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..fsm import NULL_ACTION, FiniteStateMachine
from ..instrumentation.logfmt import (ENTER, GLOBAL, LOCAL, LogRecord,
                                      TESTCASE, parse_log)
from .signatures import SignatureTable


@dataclass
class ExtractionStats:
    """Bookkeeping for the extraction-time benchmark (Section VI)."""

    log_lines: int = 0
    blocks: int = 0
    transitions: int = 0
    states: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class _Block:
    """One DivideBlock result: a stimulus and the reaction records."""

    condition: str
    records: List[LogRecord] = field(default_factory=list)


def divide_blocks(records: Sequence[LogRecord],
                  table: SignatureTable) -> List[_Block]:
    """Split the log at incoming-message signatures (Algorithm 1, line 2).

    TESTCASE markers also close the current block: a new test case means a
    fresh protocol run, so reactions must not bleed across cases.
    """
    blocks: List[_Block] = []
    current: Optional[_Block] = None
    for record in records:
        if record.kind == TESTCASE:
            current = None
            continue
        if record.kind == ENTER:
            condition = table.incoming_condition(record.name)
            if condition:
                current = _Block(condition)
                blocks.append(current)
                continue
        if current is not None:
            current.records.append(record)
    return blocks


class ModelExtractor:
    """Algorithm 1, wrapped with statistics."""

    def __init__(self, table: SignatureTable):
        self.table = table
        self.stats = ExtractionStats()

    # ------------------------------------------------------------------
    def extract(self, log_text: str,
                name: str = "extracted") -> FiniteStateMachine:
        """Build the FSM from a raw log."""
        with obs.span("extraction.extract", model=name) as span:
            records = parse_log(log_text)
            self.stats.log_lines = len(records)
            blocks = divide_blocks(records, self.table)
            self.stats.blocks = len(blocks)

            fsm = FiniteStateMachine(
                name=name, initial_state=self.table.initial_state)
            for block in blocks:
                transition = self._transition_from_block(block)
                if transition is not None:
                    source, target, conditions, actions = transition
                    fsm.add_transition(source, target, conditions, actions)

            # Canonical transition order: the extracted machine is a
            # function of the *set* of observed behaviours, never of the
            # order blocks happened to appear in the log (chaos-perturbed
            # logs interleave retransmissions differently per seed).
            fsm.transitions.sort()
            self.stats.transitions = len(fsm.transitions)
            self.stats.states = len(fsm.states)
            obs.inc("extraction.log_lines", self.stats.log_lines)
            obs.inc("extraction.blocks", self.stats.blocks)
            obs.inc("extraction.transitions", self.stats.transitions)
            obs.inc("extraction.states", self.stats.states)
        self.stats.elapsed_seconds = span.duration
        return fsm

    # ------------------------------------------------------------------
    def _transition_from_block(self, block: _Block) -> Optional[
            Tuple[str, str, Tuple[str, ...], Tuple[str, ...]]]:
        state_in: Optional[str] = None
        state_out: Optional[str] = None
        predicates: Dict[str, str] = {}
        actions: List[str] = []

        for record in block.records:
            if (record.kind == GLOBAL
                    and record.name == self.table.state_variable
                    and record.value in self.table.state_signatures):
                if state_in is None:
                    state_in = record.value            # lines 6-8
                else:
                    state_out = record.value           # lines 9-10
            elif record.kind == ENTER:
                action = self.table.outgoing_action(record.name)
                if action:
                    actions.append(action)             # lines 16-17
            elif (record.kind == LOCAL
                  and record.name in self.table.condition_variables):
                predicates[record.name] = record.value

        if state_in is None:
            # A block with no state information cannot yield a transition
            # (e.g. traffic before the state variable was first dumped).
            return None
        if state_out is None:
            state_out = state_in
        conditions = (block.condition,) + tuple(
            f"{name}={predicates[name]}" for name in sorted(predicates))
        if not actions:
            actions = [NULL_ACTION]                    # lines 20-21
        # de-duplicate actions while preserving order
        unique_actions = tuple(dict.fromkeys(actions))
        return state_in, state_out, conditions, unique_actions


def extract_model(log_text: str, table: SignatureTable,
                  name: str = "extracted"
                  ) -> Tuple[FiniteStateMachine, ExtractionStats]:
    """One-shot extraction returning the machine and its statistics."""
    extractor = ModelExtractor(table)
    fsm = extractor.extract(log_text, name)
    return fsm, extractor.stats
