"""Noise-tolerant consensus FSM extraction over chaos-perturbed runs.

Algorithm 1 mines one FSM from one instrumented conformance run; on a
perfect link that run is deterministic, so one run is enough.  On a lossy
link the observation sequence is noisy, and automata learning is only
sound under non-deterministic observations with *repeated queries and
agreement checks* (the "Learn, Check, Test" lesson).  This module is that
machinery: run the instrumented suite N times under distinct chaos seeds,
extract one FSM per run, merge into a support-annotated machine, keep the
transitions a majority of runs agree on, and quarantine the rest.

The consensus invariant on the reference implementation at default rates
is strict: every transition is supported by every run (zero quarantined,
zero flaky) and the clean-run FSM is a *subgraph* of the consensus FSM —
impairments may add absorbed-retransmission evidence but never remove or
alter behaviour.  The :class:`StabilityReport` records how far a given
implementation/rate combination is from that ideal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..conformance import TestCase, full_suite, run_conformance
from ..fsm import FiniteStateMachine, Transition
from ..lte.channel import ChaosConfig
from ..lte.implementations import REGISTRY
from .extractor import extract_model
from .signatures import table_for_implementation

#: The channel impairment counters totalled into the stability report.
CHAOS_COUNTERS = (
    "channel.chaos.dropped", "channel.chaos.duplicated",
    "channel.chaos.reordered", "channel.chaos.corrupted",
    "channel.chaos.delayed",
)


class ConsensusError(Exception):
    """Raised on invalid consensus-extraction configuration."""


@dataclass(frozen=True)
class TransitionSupport:
    """How many (and which) runs observed one transition."""

    transition: Transition
    support: int
    runs: Tuple[int, ...]

    def to_dict(self) -> Dict:
        return {"transition": self.transition.describe(),
                "support": self.support, "runs": list(self.runs)}


@dataclass
class StabilityReport:
    """Run-to-run agreement evidence for one consensus extraction."""

    implementation: str
    runs: int
    seeds: Tuple[int, ...]
    threshold: int
    chaos: Dict
    run_fingerprints: Tuple[str, ...]
    consensus_fingerprint: str
    #: fraction of run pairs whose FSM fingerprints agree exactly
    fingerprint_agreement: float
    support: List[TransitionSupport] = field(default_factory=list)
    #: below-threshold transitions, excluded from the consensus machine
    quarantined: List[TransitionSupport] = field(default_factory=list)
    #: kept transitions that not every run observed
    flaky: List[TransitionSupport] = field(default_factory=list)
    #: summed ``channel.chaos.*`` counter activity across all runs
    impairments: Dict[str, int] = field(default_factory=dict)
    clean_fingerprint: Optional[str] = None
    clean_is_subgraph: Optional[bool] = None

    @property
    def stable(self) -> bool:
        """Nothing quarantined, and the clean FSM (when known) embeds."""
        return (not self.quarantined
                and self.clean_is_subgraph is not False)

    def to_dict(self) -> Dict:
        return {
            "implementation": self.implementation,
            "runs": self.runs,
            "seeds": list(self.seeds),
            "threshold": self.threshold,
            "chaos": self.chaos,
            "run_fingerprints": list(self.run_fingerprints),
            "consensus_fingerprint": self.consensus_fingerprint,
            "fingerprint_agreement": self.fingerprint_agreement,
            "support": [entry.to_dict() for entry in self.support],
            "quarantined": [entry.to_dict()
                            for entry in self.quarantined],
            "flaky": [entry.to_dict() for entry in self.flaky],
            "impairments": dict(self.impairments),
            "clean_fingerprint": self.clean_fingerprint,
            "clean_is_subgraph": self.clean_is_subgraph,
            "stable": self.stable,
        }


@dataclass
class ConsensusExtraction:
    """The consensus machine plus everything the pipeline needs from
    the underlying runs (run 0's log stands in for coverage metrics —
    every run executes the identical case list)."""

    fsm: FiniteStateMachine
    report: StabilityReport
    log_text: str
    log_lines: int
    extraction_seconds: float
    conformance_cases: int


def merge_with_support(fsms: Sequence[FiniteStateMachine]
                       ) -> Dict[Transition, Tuple[int, ...]]:
    """Union the machines' transitions, tracking which runs saw each."""
    votes: Dict[Transition, List[int]] = {}
    for index, fsm in enumerate(fsms):
        for transition in fsm.transitions:
            votes.setdefault(transition, []).append(index)
    return {transition: tuple(runs)
            for transition, runs in votes.items()}


def _agreement(fingerprints: Sequence[str]) -> float:
    """Fraction of run pairs with byte-equal FSM fingerprints."""
    total = len(fingerprints) * (len(fingerprints) - 1) // 2
    if total == 0:
        return 1.0
    agreeing = sum(
        1
        for i in range(len(fingerprints))
        for j in range(i + 1, len(fingerprints))
        if fingerprints[i] == fingerprints[j])
    return agreeing / total


def consensus_extract(implementation: str,
                      chaos: ChaosConfig,
                      runs: int,
                      cases: Optional[Sequence[TestCase]] = None,
                      threshold: Optional[int] = None,
                      clean_fsm: Optional[FiniteStateMachine] = None
                      ) -> ConsensusExtraction:
    """Run the suite ``runs`` times under seeds ``chaos.seed + i`` and
    merge the per-run FSMs into a majority-consensus machine.

    ``threshold`` is the minimum number of supporting runs a transition
    needs to enter the consensus machine (default: strict majority).
    ``clean_fsm``, when given, is the perfect-link baseline checked for
    subgraph containment.

    ``runs=1`` is the degenerate-but-well-defined base case: the
    consensus machine *is* the single run's machine, every transition
    has full support, fingerprint agreement is 1.0 (zero pairs) and the
    report is stable — so callers can treat ``chaos_runs`` as a plain
    knob from 1 upward.  ``runs < 1`` is a configuration error.
    """
    if implementation not in REGISTRY:
        raise ConsensusError(
            f"unknown implementation {implementation!r}; "
            f"available: {sorted(REGISTRY)}")
    if runs < 1:
        raise ConsensusError(
            f"consensus needs at least 1 run, got {runs}")
    if threshold is None:
        threshold = runs // 2 + 1
    if not 1 <= threshold <= runs:
        raise ConsensusError(
            f"threshold {threshold} outside [1, {runs}]")

    ue_class = REGISTRY[implementation]
    table = table_for_implementation(ue_class)
    suite = list(cases) if cases is not None else full_suite(implementation)
    name = f"{implementation}_ue"

    fsms: List[FiniteStateMachine] = []
    impairments = {counter: 0 for counter in CHAOS_COUNTERS}
    log_text = ""
    log_lines = 0
    extraction_seconds = 0.0
    conformance_cases = 0
    with obs.span("extraction.consensus",
                  implementation=implementation, runs=runs,
                  chaos=chaos.describe()):
        for index in range(runs):
            seeded = chaos.with_seed(chaos.seed + index)
            before = obs.metrics().snapshot()["counters"]
            outcome = run_conformance(implementation, suite,
                                      instrument=True, chaos=seeded)
            after = obs.metrics().snapshot()["counters"]
            for counter in CHAOS_COUNTERS:
                impairments[counter] += int(
                    after.get(counter, 0) - before.get(counter, 0))
            fsm, stats = extract_model(outcome.log_text, table, name=name)
            fsms.append(fsm)
            extraction_seconds += stats.elapsed_seconds
            if index == 0:
                log_text = outcome.log_text
                log_lines = stats.log_lines
                conformance_cases = outcome.executed

    votes = merge_with_support(fsms)
    consensus = FiniteStateMachine(name=name,
                                   initial_state=table.initial_state)
    support: List[TransitionSupport] = []
    quarantined: List[TransitionSupport] = []
    flaky: List[TransitionSupport] = []
    for transition in sorted(votes):
        entry = TransitionSupport(transition, len(votes[transition]),
                                  votes[transition])
        support.append(entry)
        if entry.support < threshold:
            quarantined.append(entry)
            continue
        consensus.add_transition(transition.source, transition.target,
                                 transition.conditions,
                                 transition.actions)
        if entry.support < runs:
            flaky.append(entry)
    obs.count("extraction.consensus.quarantined", len(quarantined))

    fingerprints = tuple(fsm.fingerprint() for fsm in fsms)
    report = StabilityReport(
        implementation=implementation,
        runs=runs,
        seeds=tuple(chaos.seed + index for index in range(runs)),
        threshold=threshold,
        chaos=chaos.to_dict(),
        run_fingerprints=fingerprints,
        consensus_fingerprint=consensus.fingerprint(),
        fingerprint_agreement=_agreement(fingerprints),
        support=support,
        quarantined=quarantined,
        flaky=flaky,
        impairments=impairments,
    )
    if clean_fsm is not None:
        report.clean_fingerprint = clean_fsm.fingerprint()
        report.clean_is_subgraph = set(clean_fsm.transitions) <= set(
            consensus.transitions)
    return ConsensusExtraction(
        fsm=consensus,
        report=report,
        log_text=log_text,
        log_lines=log_lines,
        extraction_seconds=extraction_seconds,
        conformance_cases=conformance_cases,
    )
