"""The 62-property catalog (37 security + 25 privacy, Section VI)."""

from .spec import (CATEGORY_PRIVACY, CATEGORY_SECURITY, EXTRACTED_VOCAB,
                   KIND_LTL, KIND_TESTBED, LTEINSPECTOR_VOCAB, Property,
                   PropertyError)
from .catalog import (ALL_PROPERTIES, COMMON_PROPERTIES,
                      PRIVACY_PROPERTIES, SECURITY_PROPERTIES,
                      catalog_summary, property_by_id)

__all__ = [
    "CATEGORY_PRIVACY", "CATEGORY_SECURITY", "EXTRACTED_VOCAB",
    "KIND_LTL", "KIND_TESTBED", "LTEINSPECTOR_VOCAB", "Property",
    "PropertyError",
    "ALL_PROPERTIES", "COMMON_PROPERTIES", "PRIVACY_PROPERTIES",
    "SECURITY_PROPERTIES", "catalog_summary", "property_by_id",
]
