"""The full property catalog: 62 properties (37 security, 25 privacy).

"We extracted, formalized, and verified a total of 62 properties among
them 25 are related to privacy and 37 related to security" (Section VI).
Each property carries the threat configuration its verification needs
(which messages the adversary must be able to replay/inject), keeping the
per-property model small — the property-guided scoping that lets a COTS
explicit-state checker handle every model.

The catalog divides into:

- attack-detecting properties, each mapped to its Table I attack id
  (P1-P3, I1-I6, and the PRIOR-* rows);
- conformance/verified properties that hold on compliant models (the
  bulk of a 62-property suite: most properties of a sound implementation
  verify);
- the 13 properties shared with LTEInspector (``common=True``, Table II).
"""

from __future__ import annotations

from typing import Dict, List

from ..lte import constants as c
from ..threat import ThreatConfig
from .spec import (CATEGORY_PRIVACY, CATEGORY_SECURITY, KIND_LTL,
                   KIND_TESTBED, Property)

# ---------------------------------------------------------------------------
# Threat configurations (property-guided adversary scoping)
# ---------------------------------------------------------------------------
PASSIVE = ThreatConfig(allow_drop=False)
DROP_ONLY = ThreatConfig()
REPLAY_AUTH = ThreatConfig(replay_dl=(c.AUTHENTICATION_REQUEST,))
REPLAY_ACCEPT = ThreatConfig(replay_dl=(c.ATTACH_ACCEPT,))
REPLAY_SMC = ThreatConfig(replay_dl=(c.SECURITY_MODE_COMMAND,))
REPLAY_GUTI = ThreatConfig(replay_dl=(c.GUTI_REALLOCATION_COMMAND,))
INJECT_GUTI = ThreatConfig(inject_dl=(c.GUTI_REALLOCATION_COMMAND,))
INJECT_SMC = ThreatConfig(inject_dl=(c.SECURITY_MODE_COMMAND,))
INJECT_ACCEPT = ThreatConfig(inject_dl=(c.ATTACH_ACCEPT,))
INJECT_AUTH = ThreatConfig(inject_dl=(c.AUTHENTICATION_REQUEST,))
INJECT_PAGING = ThreatConfig(inject_dl=(c.PAGING,))
INJECT_AUTH_REJECT = ThreatConfig(inject_dl=(c.AUTHENTICATION_REJECT,))
INJECT_ATTACH_REJECT = ThreatConfig(inject_dl=(c.ATTACH_REJECT,))
INJECT_SERVICE_REJECT = ThreatConfig(
    inject_dl=(c.SERVICE_REJECT, c.PAGING))
INJECT_DETACH = ThreatConfig(inject_dl=(c.DETACH_REQUEST,))
INJECT_IDENTITY = ThreatConfig(inject_dl=(c.IDENTITY_REQUEST,))
INJECT_UL_DETACH = ThreatConfig(inject_ul=(c.DETACH_REQUEST,))
INJECT_UL_COMPLETE = ThreatConfig(inject_ul=(c.ATTACH_COMPLETE,))
BYPASS = ThreatConfig(
    inject_dl=(c.ATTACH_REJECT,),
    replay_dl=(c.ATTACH_ACCEPT,))
PASSIVE_DETACH = ThreatConfig(
    allow_drop=False,
    internal_triggers=("internal_power_on", "internal_detach"))
PASSIVE_TAU = ThreatConfig(
    allow_drop=False,
    internal_triggers=("internal_power_on", "internal_tau"))
INJECT_EMM_INFO = ThreatConfig(inject_dl=(c.EMM_INFORMATION,))


def _sec(identifier: str, description: str, formula: str,
         threat: ThreatConfig, attack_id: str = "",
         common: bool = False) -> Property:
    return Property(identifier, CATEGORY_SECURITY, KIND_LTL, description,
                    formula=formula, threat=threat, attack_id=attack_id,
                    common=common)


def _priv(identifier: str, description: str, formula: str,
          threat: ThreatConfig, attack_id: str = "",
          common: bool = False) -> Property:
    return Property(identifier, CATEGORY_PRIVACY, KIND_LTL, description,
                    formula=formula, threat=threat, attack_id=attack_id,
                    common=common)


def _sec_tb(identifier: str, description: str, experiment: str,
            attack_id: str = "") -> Property:
    return Property(identifier, CATEGORY_SECURITY, KIND_TESTBED,
                    description, testbed_attack=experiment,
                    attack_id=attack_id)


def _priv_tb(identifier: str, description: str, experiment: str,
             attack_id: str = "") -> Property:
    return Property(identifier, CATEGORY_PRIVACY, KIND_TESTBED,
                    description, testbed_attack=experiment,
                    attack_id=attack_id)


# ---------------------------------------------------------------------------
# Security properties (37)
# ---------------------------------------------------------------------------
SECURITY_PROPERTIES: List[Property] = [
    # -- authentication freshness / replay (P1, I3) ------------------------
    _sec("SEC-01", "If the UE gets authenticated, the authentication SQN "
         "is greater than the previously accepted SQN (P1 property)",
         "G (turn = ue & chan_dl = authentication_request & "
         "dl_mac_valid = 1 & dl_sqn_rel != fresh "
         "-> X (chan_ul != authentication_response))",
         REPLAY_AUTH, attack_id="P1"),
    _sec("SEC-02", "The UE never re-accepts the identical authentication "
         "SQN (counter reset, I3)",
         "G (turn = ue & chan_dl = authentication_request & "
         "dl_mac_valid = 1 & dl_sqn_rel = equal "
         "-> X (chan_ul != authentication_response))",
         REPLAY_AUTH, attack_id="I3"),
    _sec("SEC-03", "An authentication_request with an invalid MAC is "
         "never answered with authentication_response",
         "G (turn = ue & chan_dl = authentication_request & "
         "dl_mac_valid = 0 -> X (chan_ul != authentication_response))",
         INJECT_AUTH),
    _sec("SEC-04", "An invalid-MAC authentication_request elicits "
         "auth_mac_failure during attach",
         "G (turn = ue & ue_state = $ue_registered_initiated & "
         "chan_dl = authentication_request & dl_mac_valid = 0 "
         "-> X (chan_ul = auth_mac_failure))",
         INJECT_AUTH),
    _sec("SEC-05", "Replayed authentication_requests cannot drive the "
         "USIM into synchronisation failure (DoS amplification)",
         "G (turn = ue & chan_dl = authentication_request & "
         "dl_replayed = 1 -> X (chan_ul != auth_sync_failure))",
         REPLAY_AUTH, attack_id="PRIOR-auth-sync-failure"),
    # -- NAS replay protection (I1) ----------------------------------------
    _sec("SEC-06", "A protected attach_accept with a stale NAS COUNT is "
         "never accepted (replay protection, I1)",
         "G (turn = ue & chan_dl = attach_accept & "
         "dl_count_rel != fresh -> X (chan_ul != attach_complete))",
         REPLAY_ACCEPT, attack_id="I1"),
    _sec("SEC-07", "A replayed security_mode_command with a stale COUNT "
         "is never completed",
         "G (turn = ue & chan_dl = security_mode_command & "
         "dl_replayed = 1 & dl_count_rel != fresh "
         "-> X (chan_ul != security_mode_complete))",
         REPLAY_SMC, attack_id="I1"),
    _sec("SEC-08", "A replayed GUTI_reallocation_command with a stale "
         "COUNT is never completed",
         "G (turn = ue & chan_dl = guti_reallocation_command & "
         "dl_count_rel != fresh "
         "-> X (chan_ul != guti_reallocation_complete))",
         REPLAY_GUTI, attack_id="I1"),
    # -- integrity (I2) -----------------------------------------------------
    _sec("SEC-09", "Protected-type messages with a plain (0x0) header are "
         "never accepted after context establishment (I2)",
         "G (turn = ue & chan_dl = guti_reallocation_command & "
         "dl_plain = 1 -> X (chan_ul != guti_reallocation_complete))",
         INJECT_GUTI, attack_id="I2"),
    _sec("SEC-10", "A security_mode_command with an invalid MAC is never "
         "completed",
         "G (turn = ue & chan_dl = security_mode_command & "
         "dl_mac_valid = 0 -> X (chan_ul != security_mode_complete))",
         INJECT_SMC),
    _sec("SEC-11", "An attach_accept with an invalid MAC is never "
         "completed",
         "G (turn = ue & chan_dl = attach_accept & dl_mac_valid = 0 & "
         "dl_plain = 0 -> X (chan_ul != attach_complete))",
         INJECT_ACCEPT),
    _sec("SEC-12", "A plain security_mode_command is never completed",
         "G (turn = ue & chan_dl = security_mode_command & dl_plain = 1 "
         "-> X (chan_ul != security_mode_complete))",
         INJECT_SMC),
    # -- authentication before registration (I4) ---------------------------
    _sec("SEC-13", "After a reject, the UE completes authentication "
         "before re-entering the registered state (I4)",
         "G (ue_state = $ue_attach_needed -> "
         "(((ue_state != $ue_registered) U "
         "(chan_ul = authentication_response)) | "
         "G (ue_state != $ue_registered)))",
         BYPASS, attack_id="I4"),
    _sec("SEC-14", "On initial attach the UE completes authentication "
         "before registering",
         "G (ue_state = $ue_deregistered -> "
         "(((ue_state != $ue_registered) U "
         "(chan_ul = authentication_response)) | "
         "G (ue_state != $ue_registered)))",
         INJECT_ACCEPT, common=True),
    # -- procedure completion / availability (P3, prior DoS) ---------------
    _sec("SEC-15", "A network-initiated GUTI reallocation completes "
         "(selective denial, P3)",
         "G (chan_dl = guti_reallocation_command & dl_injected = 0 & "
         "dl_replayed = 0 -> F (chan_ul = guti_reallocation_complete))",
         DROP_ONLY, attack_id="P3", common=True),
    _sec("SEC-16", "A network-initiated security mode procedure completes "
         "(selective denial, P3)",
         "G (chan_dl = security_mode_command & dl_injected = 0 & "
         "dl_replayed = 0 -> F (chan_ul = security_mode_complete))",
         DROP_ONLY, attack_id="P3", common=True),
    _sec("SEC-17", "The attach procedure completes in the absence of an "
         "active adversary",
         "G (chan_ul = attach_request -> F (ue_state = $ue_registered))",
         PASSIVE, common=True),
    _sec("SEC-18", "UE-initiated detach completes in the absence of an "
         "active adversary",
         "G (chan_ul = detach_request -> "
         "F (ue_state = $ue_deregistered))",
         PASSIVE_DETACH, common=True),
    _sec("SEC-19", "Tracking area update completes in the absence of an "
         "active adversary",
         "G (chan_ul = tracking_area_update_request -> "
         "F (ue_state = $ue_registered))",
         PASSIVE_TAU, common=True),
    # -- spoofed reject / release messages (prior attacks) ------------------
    _sec("SEC-20", "An injected authentication_reject cannot deregister "
         "the UE (numb attack)",
         "G (ue_state = $ue_registered_initiated & "
         "chan_dl = authentication_reject & dl_injected = 1 & turn = ue "
         "-> X (ue_state != $ue_deregistered))",
         INJECT_AUTH_REJECT, attack_id="PRIOR-numb", common=True),
    _sec("SEC-21", "An injected attach_reject cannot abort the attach "
         "procedure (service denial)",
         "G (ue_state = $ue_registered_initiated & "
         "chan_dl = attach_reject & dl_injected = 1 & turn = ue "
         "-> X (ue_state = $ue_registered_initiated))",
         INJECT_ATTACH_REJECT, attack_id="PRIOR-service-denial",
         common=True),
    _sec("SEC-22", "An injected service_reject cannot push the UE out of "
         "service (denial of all services)",
         "G (ue_state = $ue_service_initiated & "
         "chan_dl = service_reject & dl_injected = 1 & turn = ue "
         "-> X (ue_state != $ue_attach_needed))",
         INJECT_SERVICE_REJECT, attack_id="PRIOR-denial-all-services"),
    _sec("SEC-23", "An injected plaintext detach_request cannot detach "
         "the UE during attach (detach/downgrade)",
         "G (ue_state = $ue_registered_initiated & "
         "chan_dl = detach_request & dl_injected = 1 & turn = ue "
         "-> X (ue_state != $ue_deregistered))",
         INJECT_DETACH, attack_id="PRIOR-detach-downgrade"),
    _sec("SEC-24", "A spoofed uplink detach_request cannot deregister the "
         "session at the MME (stealthy kicking-off)",
         "G (mme_state = $mme_registered & chan_ul = detach_request & "
         "ul_injected = 1 & turn = mme "
         "-> X (mme_state != $mme_deregistered))",
         INJECT_UL_DETACH, attack_id="PRIOR-stealthy-kickoff",
         common=True),
    _sec("SEC-25", "Injected paging cannot trigger a service request "
         "(paging hijacking)",
         "G (chan_dl = paging & dl_injected = 1 & turn = ue "
         "-> X (chan_ul != service_request))",
         INJECT_PAGING, attack_id="PRIOR-paging-hijack", common=True),
    _sec("SEC-26", "Injected paging cannot move a registered UE off "
         "normal service (panic attack)",
         "G (ue_state = $ue_registered & chan_dl = paging & "
         "dl_injected = 1 & turn = ue "
         "-> X (ue_state = $ue_registered))",
         INJECT_PAGING, attack_id="PRIOR-panic"),
    # -- MME-side progression ------------------------------------------------
    _sec("SEC-27", "The MME authenticates before sending attach_accept",
         "G (mme_state = $mme_deregistered -> "
         "(((chan_dl != attach_accept) U "
         "(chan_ul = authentication_response)) | "
         "G (chan_dl != attach_accept)))",
         PASSIVE, common=True),
    _sec("SEC-28", "A forged attach_complete cannot register the session "
         "at the MME",
         "G (mme_state = $mme_common & chan_ul = attach_complete & "
         "ul_injected = 1 -> X (mme_state != $mme_registered))",
         INJECT_UL_COMPLETE),
    _sec("SEC-29", "The MME answers a synchronisation failure with a "
         "fresh authentication_request",
         "G (mme_state = $mme_common & chan_ul = auth_sync_failure & "
         "ul_injected = 0 & turn = mme "
         "-> X (chan_dl = authentication_request))",
         PASSIVE),
    # -- responsiveness (verified behaviour) --------------------------------
    _sec("SEC-30", "A valid SMC in the authenticated state is completed",
         "G (turn = ue & ue_state = $ue_authenticated & "
         "chan_dl = security_mode_command & dl_mac_valid = 1 & "
         "dl_count_rel = fresh "
         "-> X (chan_ul = security_mode_complete))",
         PASSIVE),
    _sec("SEC-31", "A valid attach_accept in the secure state is "
         "completed",
         "G (turn = ue & ue_state = $ue_secure & "
         "chan_dl = attach_accept & dl_mac_valid = 1 & "
         "dl_count_rel = fresh -> X (chan_ul = attach_complete))",
         PASSIVE),
    _sec("SEC-32", "A genuine network detach is acknowledged",
         "G (turn = ue & ue_state = $ue_registered & "
         "chan_dl = detach_request & dl_injected = 0 & dl_replayed = 0 & "
         "dl_mac_valid = 1 -> X (chan_ul = detach_accept))",
         PASSIVE_DETACH, common=True),
    _sec("SEC-33", "A genuine paging occasion is answered while "
         "registered",
         "G (turn = ue & ue_state = $ue_registered & chan_dl = paging & "
         "dl_injected = 0 -> X (chan_ul = service_request))",
         PASSIVE, common=True),
    # -- state-machine sanity (verified structure) ---------------------------
    _sec("SEC-34", "A deregistered UE never answers paging with a "
         "service request",
         "G (turn = ue & ue_state = $ue_deregistered & chan_dl = paging "
         "-> X (chan_ul != service_request))",
         INJECT_PAGING),
    _sec("SEC-35", "No security_mode_complete before authentication",
         "G (turn = ue & ue_state = $ue_registered_initiated & "
         "chan_dl = security_mode_command "
         "-> X (chan_ul != security_mode_complete))",
         INJECT_SMC),
    _sec("SEC-36", "The detach acknowledgement terminates the session",
         "G (turn = ue & ue_state = $ue_dereg_initiated & "
         "chan_dl = detach_accept "
         "-> X (ue_state = $ue_deregistered))",
         PASSIVE_DETACH),
    _sec("SEC-37", "The scheduler is deadlock-free: the UE acts "
         "infinitely often",
         "G (F (turn = ue))",
         DROP_ONLY),
]

# ---------------------------------------------------------------------------
# Privacy properties (25)
# ---------------------------------------------------------------------------
PRIVACY_PROPERTIES: List[Property] = [
    # -- linkability experiments (CPV observational equivalence) -----------
    _priv_tb("PRIV-01", "Two UEs are indistinguishable by their response "
             "to a replayed authentication_request (P2)",
             "P2", attack_id="P2"),
    _priv_tb("PRIV-02", "Two UEs are indistinguishable by their response "
             "to a replayed security_mode_command (I6)",
             "I6", attack_id="I6"),
    _priv_tb("PRIV-03", "Paging with IMSI does not single out the paged "
             "subscriber",
             "PRIOR-linkability-imsi-paging",
             attack_id="PRIOR-linkability-imsi-paging"),
    _priv_tb("PRIV-04", "Failure-message types do not distinguish UEs "
             "(auth_sync_failure vs auth_mac_failure)",
             "PRIOR-linkability-auth-sync",
             attack_id="PRIOR-linkability-auth-sync"),
    _priv_tb("PRIV-05", "A relayed session is distinguishable from a "
             "direct one (authentication relay)",
             "PRIOR-auth-relay", attack_id="PRIOR-auth-relay"),
    _priv_tb("PRIV-06", "The GUTI changes across observation windows "
             "(GUTI/TMSI linkability)",
             "PRIOR-linkability-guti",
             attack_id="PRIOR-linkability-guti"),
    _priv_tb("PRIV-07", "TMSI reallocation is unlinkable (3G procedure; "
             "'-' in Table I)",
             "PRIOR-linkability-tmsi-realloc",
             attack_id="PRIOR-linkability-tmsi-realloc"),
    _priv_tb("PRIV-08", "The IMSI is never disclosed to an "
             "unauthenticated identity_request after attach (I5)",
             "I5", attack_id="I5"),
    # -- identity exposure (model checking) ---------------------------------
    _priv("PRIV-09", "A registered UE never answers identity_request "
          "with an identity_response (I5 model-level)",
          "G (turn = ue & ue_state = $ue_registered & "
          "chan_dl = identity_request "
          "-> X (chan_ul != identity_response))",
          INJECT_IDENTITY, attack_id="I5"),
    _priv("PRIV-10", "The GUTI cannot be (re)set by a plaintext message "
          "(attacker-chosen tracking identifier, I2 privacy side)",
          "G (turn = ue & chan_dl = guti_reallocation_command & "
          "dl_plain = 1 -> X (chan_ul != guti_reallocation_complete))",
          INJECT_GUTI, attack_id="I2"),
    _priv("PRIV-11", "GUTI reallocation eventually refreshes the "
          "temporary identity (P3 privacy impact)",
          "G (chan_dl = guti_reallocation_command & dl_injected = 0 & "
          "dl_replayed = 0 -> F (chan_ul = guti_reallocation_complete))",
          DROP_ONLY, attack_id="P3"),
    _priv("PRIV-12", "An identity_response is only ever sent after an "
          "identity_request",
          "G (ue_state = $ue_deregistered -> "
          "(((chan_ul != identity_response) U "
          "(chan_dl = identity_request)) | "
          "G (chan_ul != identity_response)))",
          PASSIVE),
    _priv("PRIV-13", "During initial attach the UE answers the "
          "network's identity request (but only then)",
          "G (turn = ue & ue_state = $ue_registered_initiated & "
          "chan_dl = identity_request & dl_injected = 0 "
          "-> X (chan_ul = identity_response))",
          PASSIVE),
    _priv("PRIV-14", "A secure-state UE never volunteers an identity "
          "response",
          "G (turn = ue & ue_state = $ue_secure & "
          "chan_dl = identity_request "
          "-> X (chan_ul != identity_response))",
          INJECT_IDENTITY),
    _priv("PRIV-15", "An authenticated-state UE never volunteers an "
          "identity response",
          "G (turn = ue & ue_state = $ue_authenticated & "
          "chan_dl = identity_request "
          "-> X (chan_ul != identity_response))",
          INJECT_IDENTITY),
    # -- testbed/CPV secrecy experiments -------------------------------------
    _priv_tb("PRIV-16", "The permanent key never leaks to the channel "
             "(secrecy of K)",
             "SECRECY-permanent-key"),
    _priv_tb("PRIV-17", "The session keys never leak to the channel "
             "(secrecy of KASME/NAS keys)",
             "SECRECY-session-keys"),
    _priv_tb("PRIV-18", "The IMSI is underivable from a GUTI-based "
             "attach exchange",
             "SECRECY-imsi-guti-attach"),
    _priv_tb("PRIV-19", "Re-attach uses the GUTI rather than the IMSI "
             "when one is assigned",
             "GUTI-reattach"),
    _priv_tb("PRIV-20", "Replaying an attach_request to the network does "
             "not distinguish subscribers",
             "ATTACH-replay-indistinguishable"),
    # -- model-level privacy hygiene -----------------------------------------
    _priv("PRIV-21", "Honest paging never uses the IMSI once a GUTI is "
          "assigned (MME-side hygiene)",
          "G (mme_state = $mme_registered & chan_dl = paging & "
          "dl_injected = 0 -> F (turn = ue))",
          PASSIVE),
    _priv("PRIV-22", "The UE never responds to foreign-identity paging",
          "G (turn = ue & ue_state = $ue_deregistered & "
          "chan_dl = paging -> X (chan_ul != service_request))",
          INJECT_PAGING),
    _priv("PRIV-23", "auth_mac_failure responses carry no "
          "subscriber-distinguishing state (always available)",
          "G (turn = ue & ue_state = $ue_registered_initiated & "
          "chan_dl = authentication_request & dl_mac_valid = 0 "
          "-> X (chan_ul != auth_sync_failure))",
          INJECT_AUTH),
    _priv("PRIV-24", "GUTI reallocation completion follows a genuine "
          "command only",
          "G (ue_state = $ue_deregistered -> "
          "(((chan_ul != guti_reallocation_complete) U "
          "(chan_dl = guti_reallocation_command)) | "
          "G (chan_ul != guti_reallocation_complete)))",
          PASSIVE),
    _priv("PRIV-25", "The UE does not emit uplink traffic before "
          "initiating attach (no tracking before registration)",
          "G (ue_state = $ue_deregistered & turn = ue & "
          "chan_dl = none -> X (chan_ul != identity_response))",
          PASSIVE),
]

ALL_PROPERTIES: List[Property] = SECURITY_PROPERTIES + PRIVACY_PROPERTIES

#: The Table II set: properties shared with LTEInspector.
COMMON_PROPERTIES: List[Property] = [p for p in ALL_PROPERTIES if p.common]


def property_by_id(identifier: str) -> Property:
    for prop in ALL_PROPERTIES:
        if prop.identifier == identifier:
            return prop
    raise KeyError(identifier)


def catalog_summary() -> Dict[str, int]:
    return {
        "total": len(ALL_PROPERTIES),
        "security": len(SECURITY_PROPERTIES),
        "privacy": len(PRIVACY_PROPERTIES),
        "common": len(COMMON_PROPERTIES),
        "ltl": sum(1 for p in ALL_PROPERTIES if p.kind == KIND_LTL),
        "testbed": sum(1 for p in ALL_PROPERTIES
                       if p.kind == KIND_TESTBED),
    }
