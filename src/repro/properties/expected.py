"""The paper's Table I as data: expected verdicts per implementation.

Single source of truth for the detection matrix — the regression tests
(`tests/core/test_prochecker.py`, `tests/testbed/test_attacks.py`) and
the Table I benchmark all assert against these tables, so a behavioural
regression in any layer surfaces as a matrix mismatch.

Encoding: the paper's filled circle (attack applies) is ``True``, the
empty circle ``False``; our ``reference`` column is the closed-source
stand-in (the paper prints no circles for it — the expectation follows
from the attack classes: standards-level rows apply, implementation rows
do not).
"""

from __future__ import annotations

from typing import Dict, Tuple

IMPLEMENTATIONS: Tuple[str, ...] = ("reference", "srsue", "oai")

#: New attacks (Table I top): attack id -> {implementation: detected?}
NEW_ATTACKS: Dict[str, Dict[str, bool]] = {
    "P1": {"reference": True, "srsue": True, "oai": True},
    "P2": {"reference": True, "srsue": True, "oai": True},
    "P3": {"reference": True, "srsue": True, "oai": True},
    "I1": {"reference": False, "srsue": True, "oai": True},
    "I2": {"reference": False, "srsue": False, "oai": True},
    "I3": {"reference": False, "srsue": True, "oai": False},
    "I4": {"reference": False, "srsue": True, "oai": False},
    "I5": {"reference": False, "srsue": False, "oai": True},
    "I6": {"reference": False, "srsue": True, "oai": True},
}

#: Prior attacks detected on every implementation (12 rows).
PRIOR_DETECTED: Tuple[str, ...] = (
    "PRIOR-auth-sync-failure",
    "PRIOR-stealthy-kickoff",
    "PRIOR-panic",
    "PRIOR-linkability-imsi-paging",
    "PRIOR-linkability-auth-sync",
    "PRIOR-auth-relay",
    "PRIOR-numb",
    "PRIOR-denial-all-services",
    "PRIOR-paging-hijack",
    "PRIOR-detach-downgrade",
    "PRIOR-service-denial",
    "PRIOR-linkability-guti",
)

#: The two rows the paper marks '-' (not evaluated / not applicable).
PRIOR_NOT_APPLICABLE: Tuple[str, ...] = (
    "PRIOR-linkability-tmsi-realloc",
    "PRIOR-downgrade-tau-reject",
)

#: 5G forward-claims (beyond Table I; "Impact on 5G" paragraphs).
FIVE_G_ATTACKS: Tuple[str, ...] = ("P3-5G",)


def expected_detected(implementation: str) -> set:
    """All attack ids the pipeline should detect for ``implementation``."""
    detected = {attack for attack, row in NEW_ATTACKS.items()
                if row[implementation]}
    detected.update(PRIOR_DETECTED)
    return detected


def matrix_rows() -> Tuple[str, ...]:
    """Table I row order (new attacks, then prior, then '-' rows)."""
    return (tuple(NEW_ATTACKS) + PRIOR_DETECTED + PRIOR_NOT_APPLICABLE)
