"""Generate ``docs/PROPERTIES.md`` from the catalog.

Run as ``python -m repro.properties.docgen`` after editing the catalog;
``tests/properties/test_docgen.py`` keeps the checked-in document in
sync.
"""

from __future__ import annotations

from typing import List

from .catalog import ALL_PROPERTIES
from .spec import EXTRACTED_VOCAB, KIND_LTL


def render() -> str:
    """The full markdown document as a string."""
    lines: List[str] = [
        "# Property catalog",
        "",
        "All 62 properties (37 security, 25 privacy) the pipeline "
        "verifies,",
        "generated from `repro.properties.catalog` (regenerate with",
        "`python -m repro.properties.docgen`).  LTL formulas are shown",
        "instantiated for the extracted-model vocabulary; `testbed` "
        "properties",
        "run the named experiment and apply Dolev-Yao secrecy or",
        "observational-equivalence queries to its traces.",
        "",
    ]
    for prop in ALL_PROPERTIES:
        lines.append(f"## {prop.identifier} ({prop.category}"
                     + (", Table II common" if prop.common else "") + ")")
        lines.append("")
        lines.append(prop.description)
        lines.append("")
        if prop.kind == KIND_LTL:
            lines.append("```")
            lines.append(prop.formula_for(EXTRACTED_VOCAB))
            lines.append("```")
            adversary = []
            if prop.threat.replay_dl:
                adversary.append("replay: "
                                 + ", ".join(prop.threat.replay_dl))
            if prop.threat.inject_dl:
                adversary.append("inject: "
                                 + ", ".join(prop.threat.inject_dl))
            if prop.threat.inject_ul:
                adversary.append("inject-uplink: "
                                 + ", ".join(prop.threat.inject_ul))
            adversary.append("drop: "
                             + ("yes" if prop.threat.allow_drop
                                else "no"))
            lines.append(f"*Adversary*: {'; '.join(adversary)}.")
        else:
            lines.append(f"*Experiment*: `{prop.testbed_attack}`.")
        if prop.attack_id:
            lines.append(f"*Detects*: {prop.attack_id}.")
        lines.append("")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - thin file-writing wrapper
    with open("docs/PROPERTIES.md", "w") as handle:
        handle.write(render())
    print("wrote docs/PROPERTIES.md")


if __name__ == "__main__":  # pragma: no cover
    main()
