"""Generate ``docs/PROPERTIES.md`` from the catalog.

Run as ``python -m repro.properties.docgen`` after editing the catalog;
``--check`` exits non-zero when the checked-in document is stale (the CI
static-analysis job runs it, alongside ``tests/properties/test_docgen.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .catalog import ALL_PROPERTIES
from .spec import EXTRACTED_VOCAB, KIND_LTL


def render() -> str:
    """The full markdown document as a string."""
    lines: List[str] = [
        "# Property catalog",
        "",
        "All 62 properties (37 security, 25 privacy) the pipeline "
        "verifies,",
        "generated from `repro.properties.catalog` (regenerate with",
        "`python -m repro.properties.docgen`).  LTL formulas are shown",
        "instantiated for the extracted-model vocabulary; `testbed` "
        "properties",
        "run the named experiment and apply Dolev-Yao secrecy or",
        "observational-equivalence queries to its traces.",
        "",
    ]
    for prop in ALL_PROPERTIES:
        lines.append(f"## {prop.identifier} ({prop.category}"
                     + (", Table II common" if prop.common else "") + ")")
        lines.append("")
        lines.append(prop.description)
        lines.append("")
        if prop.kind == KIND_LTL:
            lines.append("```")
            lines.append(prop.formula_for(EXTRACTED_VOCAB))
            lines.append("```")
            adversary = []
            if prop.threat.replay_dl:
                adversary.append("replay: "
                                 + ", ".join(prop.threat.replay_dl))
            if prop.threat.inject_dl:
                adversary.append("inject: "
                                 + ", ".join(prop.threat.inject_dl))
            if prop.threat.inject_ul:
                adversary.append("inject-uplink: "
                                 + ", ".join(prop.threat.inject_ul))
            adversary.append("drop: "
                             + ("yes" if prop.threat.allow_drop
                                else "no"))
            lines.append(f"*Adversary*: {'; '.join(adversary)}.")
        else:
            lines.append(f"*Experiment*: `{prop.testbed_attack}`.")
        if prop.attack_id:
            lines.append(f"*Detects*: {prop.attack_id}.")
        lines.append("")
    return "\n".join(lines)


DEFAULT_OUTPUT = "docs/PROPERTIES.md"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.properties.docgen",
        description="regenerate docs/PROPERTIES.md from the catalog")
    parser.add_argument("--check", action="store_true",
                        help="do not write; exit 1 if the checked-in "
                             "document is stale")
    parser.add_argument("-o", "--output", metavar="FILE",
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    text = render()
    if args.check:
        try:
            with open(args.output) as handle:
                current = handle.read()
        except OSError as exc:
            print(f"{args.output} unreadable: {exc}", file=sys.stderr)
            return 1
        if current != text:
            print(f"{args.output} is stale; regenerate with "
                  f"`python -m repro.properties.docgen`", file=sys.stderr)
            return 1
        print(f"{args.output} is up to date")
        return 0
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
