"""Property specification: formal security and privacy goals (Section VI).

A :class:`Property` is either an LTL obligation checked on the
threat-instrumented model via the CEGAR loop (``kind="ltl"``), or a
testbed/CPV experiment (``kind="testbed"``) for the observational
(linkability/secrecy) goals that model checking alone cannot express.

LTL formulas are written against a *vocabulary template*: state names
appear as ``$placeholders`` so the same property text can be checked both
on ProChecker's extracted models (TS 24.301 state names) and on the
LTEInspector baseline (its own coarser names) — how the Fig. 8
scalability comparison runs the common property set on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from string import Template
from typing import Dict

from ..lte import constants as c
from ..threat import ThreatConfig

CATEGORY_SECURITY = "security"
CATEGORY_PRIVACY = "privacy"

KIND_LTL = "ltl"
KIND_TESTBED = "testbed"


class PropertyError(Exception):
    """Raised for malformed property specifications."""


#: Vocabulary for models extracted by ProChecker (TS 24.301 names).
EXTRACTED_VOCAB: Dict[str, str] = {
    "ue_deregistered": c.EMM_DEREGISTERED,
    "ue_registered_initiated": c.EMM_REGISTERED_INITIATED,
    "ue_authenticated": c.EMM_REGISTERED_INITIATED_AUTHENTICATED,
    "ue_secure": c.EMM_REGISTERED_INITIATED_SECURE,
    "ue_registered": c.EMM_REGISTERED,
    "ue_attach_needed": c.EMM_DEREGISTERED_ATTACH_NEEDED,
    "ue_dereg_initiated": c.EMM_DEREGISTERED_INITIATED,
    "ue_service_initiated": c.EMM_SERVICE_REQUEST_INITIATED,
    "ue_tau_initiated": c.EMM_TRACKING_AREA_UPDATING_INITIATED,
    "mme_deregistered": "mme_deregistered",
    "mme_common": "mme_common_procedure_initiated",
    "mme_registered": "mme_registered",
}

#: Vocabulary for the LTEInspector baseline model (coarser states).
LTEINSPECTOR_VOCAB: Dict[str, str] = {
    "ue_deregistered": "ue_deregistered",
    "ue_registered_initiated": "ue_registered_initiated",
    "ue_authenticated": "ue_registered_initiated",
    "ue_secure": "ue_registered_initiated",
    "ue_registered": "ue_registered",
    "ue_attach_needed": "ue_deregistered",
    "ue_dereg_initiated": "ue_dereg_initiated",
    "ue_service_initiated": "ue_registered",
    "ue_tau_initiated": "ue_registered",
    "mme_deregistered": "mme_deregistered",
    "mme_common": "mme_common_procedure_initiated",
    "mme_registered": "mme_registered",
}


@dataclass(frozen=True)
class Property:
    """One formal security/privacy goal."""

    identifier: str
    category: str
    kind: str
    description: str
    #: LTL template (``$placeholders`` from the vocabularies above)
    formula: str = ""
    threat: ThreatConfig = field(default_factory=ThreatConfig)
    #: testbed experiment id (for ``kind="testbed"``)
    testbed_attack: str = ""
    #: Table I attack this property detects, if any ("P1", "I3", ...)
    attack_id: str = ""
    #: member of the 13-property set shared with LTEInspector (Table II)
    common: bool = False

    def __post_init__(self):
        if self.category not in (CATEGORY_SECURITY, CATEGORY_PRIVACY):
            raise PropertyError(f"bad category {self.category!r}")
        if self.kind == KIND_LTL and not self.formula:
            raise PropertyError(f"{self.identifier}: LTL property "
                                "requires a formula")
        if self.kind == KIND_TESTBED and not self.testbed_attack:
            raise PropertyError(f"{self.identifier}: testbed property "
                                "requires an experiment id")

    def formula_for(self, vocabulary: Dict[str, str]) -> str:
        """Instantiate the formula template for a concrete model."""
        return Template(self.formula).substitute(vocabulary)
