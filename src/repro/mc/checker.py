"""Explicit-state model checking engine (the NuXmv stand-in).

Two entry points:

- :func:`check_invariant` — BFS reachability for safety properties ``G p``
  with propositional ``p``; returns the shortest violating prefix.
- :func:`check_ltl` — full LTL: translate the *negated* formula to a Büchi
  automaton (:mod:`repro.mc.buchi`), build the synchronous product with the
  model's reachable state graph, and search for a reachable accepting cycle
  via Tarjan SCC decomposition; the witness lasso is the counterexample.

The extracted 4G LTE models are small enumerated-domain systems (that is
the paper's RQ3 point: semantic extraction keeps the model within COTS
model-checker bounds), so the explicit approach is complete and fast here.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from .buchi import BuchiAutomaton, ltl_to_buchi
from .counterexample import CheckResult, Step, Trace
from .expr import And, Const, Expr, Not, Or
from .ltl import Atom, BinOp, BoolConst, Formula, LTL_FALSE
from .model import Model


class CheckerError(Exception):
    """Raised when a property cannot be checked on the given model."""


# ---------------------------------------------------------------------------
# Safety fast path
# ---------------------------------------------------------------------------
def check_invariant(model: Model, invariant: Expr,
                    name: str = "invariant") -> CheckResult:
    """BFS for a reachable state violating ``invariant`` (i.e. check G p)."""
    model.validate_expression(invariant)
    with obs.span("mc.check", property=name, mode="invariant") as span:
        initial = model.initial_state()
        initial_key = model.key(initial)
        parents: Dict[Tuple, Optional[Tuple[Tuple, str]]] = \
            {initial_key: None}
        queue = deque([initial_key])
        violating: Optional[Tuple] = None
        if not invariant.evaluate(initial):
            violating = initial_key
        while queue and violating is None:
            key = queue.popleft()
            for label, successor_key in model.successor_items(key):
                if successor_key in parents:
                    continue
                parents[successor_key] = (key, label)
                if not invariant.evaluate(model.unkey(successor_key)):
                    violating = successor_key
                    break
                queue.append(successor_key)

        obs.inc("mc.checks")
        obs.inc("mc.states_explored", len(parents))
        trace = (None if violating is None
                 else _path_to_trace(model, parents, violating))
    obs.observe("mc.check_seconds", span.duration)
    return CheckResult(name, holds=trace is None, counterexample=trace,
                       states_explored=len(parents),
                       elapsed_seconds=span.duration)


def _path_to_trace(model: Model, parents, key) -> Trace:
    chain: List[Tuple[Tuple, str]] = []
    cursor = key
    while parents[cursor] is not None:
        predecessor, label = parents[cursor]
        chain.append((cursor, label))
        cursor = predecessor
    chain.reverse()
    trace = Trace(initial_state=model.unkey(cursor))
    for state_key, label in chain:
        trace.steps.append(Step(label, model.unkey(state_key)))
    return trace


# ---------------------------------------------------------------------------
# Formula utilities
# ---------------------------------------------------------------------------
def formula_to_expr(formula: Formula) -> Optional[Expr]:
    """Convert a purely propositional formula to an :class:`Expr`.

    Returns ``None`` when the formula contains temporal operators.
    """
    if isinstance(formula, BoolConst):
        return Const(formula.value)
    if isinstance(formula, Atom):
        return Not(formula.expr) if formula.negated else formula.expr
    if isinstance(formula, BinOp) and formula.op in ("and", "or"):
        left = formula_to_expr(formula.left)
        right = formula_to_expr(formula.right)
        if left is None or right is None:
            return None
        return And(left, right) if formula.op == "and" else Or(left, right)
    return None


def as_invariant(formula: Formula) -> Optional[Expr]:
    """If ``formula`` is ``G p`` with propositional ``p``, return ``p``."""
    if (isinstance(formula, BinOp) and formula.op == "R"
            and formula.left == LTL_FALSE):
        return formula_to_expr(formula.right)
    return None


# ---------------------------------------------------------------------------
# Full LTL via Büchi product
# ---------------------------------------------------------------------------
class _Product:
    """Reachable synchronous product of model and Büchi automaton."""

    def __init__(self, model: Model, automaton: BuchiAutomaton):
        self.model = model
        self.automaton = automaton
        self.nodes: Dict[Tuple[Tuple, int], int] = {}
        self.edges: Dict[int, List[Tuple[int, str]]] = {}
        self.initials: List[int] = []
        self.model_states_seen: Set[Tuple] = set()
        self._build()

    def _intern(self, model_key: Tuple, buchi_state: int) -> Tuple[int, bool]:
        key = (model_key, buchi_state)
        if key in self.nodes:
            return self.nodes[key], False
        node_id = len(self.nodes)
        self.nodes[key] = node_id
        self.edges[node_id] = []
        return node_id, True

    def _build(self) -> None:
        model = self.model
        automaton = self.automaton
        initial = model.initial_state()
        initial_key = model.key(initial)
        self.model_states_seen.add(initial_key)
        worklist: List[Tuple[Tuple, int]] = []
        for buchi_state in automaton.initial:
            if automaton.state_satisfies(buchi_state, initial):
                node_id, fresh = self._intern(initial_key, buchi_state)
                self.initials.append(node_id)
                if fresh:
                    worklist.append((initial_key, buchi_state))
        while worklist:
            model_key, buchi_state = worklist.pop()
            node_id = self.nodes[(model_key, buchi_state)]
            # successor_items memoises on the model, so properties sharing
            # a threat-instrumented model also share its state graph.
            for label, successor_key in model.successor_items(model_key):
                self.model_states_seen.add(successor_key)
                successor_state = model.unkey(successor_key)
                for next_buchi in automaton.successors(buchi_state):
                    if not automaton.state_satisfies(next_buchi,
                                                     successor_state):
                        continue
                    succ_id, fresh = self._intern(successor_key, next_buchi)
                    self.edges[node_id].append((succ_id, label))
                    if fresh:
                        worklist.append((successor_key, next_buchi))

    def accepting_nodes(self) -> Set[int]:
        return {node_id for (key, node_id) in
                ((k, v) for k, v in self.nodes.items())
                if key[1] in self.automaton.accepting}

    def node_state(self, node_id: int) -> Dict:
        for (model_key, _buchi), nid in self.nodes.items():
            if nid == node_id:
                return self.model.unkey(model_key)
        raise CheckerError(f"unknown product node {node_id}")


def _tarjan_sccs(edges: Dict[int, List[Tuple[int, str]]],
                 roots: Sequence[int]) -> List[List[int]]:
    """Iterative Tarjan SCC over the product graph."""
    index_counter = [0]
    indices: Dict[int, int] = {}
    lowlinks: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []

    for root in roots:
        if root in indices:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter[0]
                lowlinks[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = edges.get(node, [])
            while child_index < len(successors):
                successor = successors[child_index][0]
                child_index += 1
                if successor not in indices:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return sccs


def _bfs_path(edges, sources: Sequence[int], targets: Set[int],
              restrict: Optional[Set[int]] = None,
              skip_trivial_start: bool = False):
    """Shortest path (list of (node, label)) from any source to any target."""
    parents: Dict[int, Optional[Tuple[int, str]]] = {}
    queue = deque()
    for source in sources:
        parents[source] = None
        queue.append(source)
        if source in targets and not skip_trivial_start:
            return _reconstruct(parents, source)
    while queue:
        node = queue.popleft()
        for successor, label in edges.get(node, []):
            if restrict is not None and successor not in restrict:
                continue
            if successor in parents:
                if successor in targets and skip_trivial_start:
                    # allow returning to a source through a real edge
                    chain = _reconstruct(parents, node)
                    chain.append((successor, label))
                    return chain
                continue
            parents[successor] = (node, label)
            if successor in targets:
                return _reconstruct(parents, successor)
            queue.append(successor)
    return None


def _reconstruct(parents, node):
    chain = []
    cursor = node
    while parents[cursor] is not None:
        predecessor, label = parents[cursor]
        chain.append((cursor, label))
        cursor = predecessor
    chain.append((cursor, None))
    chain.reverse()
    return chain


def check_ltl(model: Model, formula: Formula,
              name: str = "property") -> CheckResult:
    """Check ``model |= formula`` for arbitrary LTL ``formula``."""
    for expr in formula.atoms():
        model.validate_expression(expr)

    invariant = as_invariant(formula)
    if invariant is not None:
        return check_invariant(model, invariant, name)

    with obs.span("mc.check", property=name, mode="ltl") as span:
        automaton = ltl_to_buchi(formula.negate())
        product = _Product(model, automaton)
        accepting = product.accepting_nodes()
        sccs = _tarjan_sccs(product.edges, product.initials)

        witness_scc: Optional[List[int]] = None
        for component in sccs:
            members = set(component)
            if not (members & accepting):
                continue
            if len(component) > 1:
                witness_scc = component
                break
            node = component[0]
            if any(successor == node
                   for successor, _ in product.edges[node]):
                witness_scc = component
                break

        obs.inc("mc.checks")
        obs.inc("mc.states_explored", len(product.model_states_seen))
        obs.inc("mc.product_states", len(product.nodes))
        obs.inc("mc.buchi_states", len(automaton.states))
        obs.gauge_max("mc.max_product_states", len(product.nodes))

        result = CheckResult(
            name, holds=witness_scc is None,
            states_explored=len(product.model_states_seen),
            product_states=len(product.nodes),
            buchi_states=len(automaton.states),
        )
        if witness_scc is not None:
            members = set(witness_scc)
            target_accepting = members & accepting
            prefix = _bfs_path(product.edges, product.initials,
                               target_accepting)
            if prefix is None:  # pragma: no cover - reachable by SCC
                raise CheckerError(
                    "internal error: accepting SCC unreachable")
            anchor = prefix[-1][0]
            cycle = _bfs_path(product.edges, [anchor], {anchor},
                              restrict=members, skip_trivial_start=True)
            if cycle is None:  # pragma: no cover - cycle exists in SCC
                raise CheckerError(
                    "internal error: no cycle in accepting SCC")

            node_states = {}
            for (model_key, _buchi), node_id in product.nodes.items():
                node_states.setdefault(node_id, model.unkey(model_key))

            trace = Trace(initial_state=node_states[prefix[0][0]])
            for node, label in prefix[1:]:
                trace.steps.append(Step(label, node_states[node]))
            trace.loop_start = len(trace.steps)
            for node, label in cycle[1:]:
                trace.steps.append(Step(label, node_states[node]))
            # The lasso's final state equals the loop anchor; keep
            # loop_start pointing at the anchor state index.
            result.counterexample = trace
    result.elapsed_seconds = span.duration
    obs.observe("mc.check_seconds", span.duration)
    return result
