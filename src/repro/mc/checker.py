"""Explicit-state model checking engine (the NuXmv stand-in).

The supported entry point is the :class:`~repro.mc.api.ModelChecker`
facade; this module holds the engines behind it:

- :func:`_check_invariant` — BFS reachability for safety properties
  ``G p`` with propositional ``p``, over the model's interned
  :class:`~repro.mc.graph.StateGraph`; returns the shortest violating
  prefix.
- :class:`_OnTheFlySearch` — full LTL, the default: translate the
  *negated* formula to a Büchi automaton (:mod:`repro.mc.buchi`,
  memoised per normalised formula) and run a nested depth-first search
  (Schwoon–Esparza colouring) over the product *constructed on the fly*.
  Product nodes are dense ints (``state id * |Q| + q``), entry labels
  are evaluated through per-literal truth columns, and the search stops
  at the first accepting cycle — for violated properties only a
  fraction of the product is ever built.
- :func:`check_ltl_materialised` — the previous engine (materialise the
  full reachable product, Tarjan SCC, BFS witness), kept as the
  independent reference implementation the on-the-fly path is
  equivalence-tested against.

The extracted 4G LTE models are small enumerated-domain systems (that is
the paper's RQ3 point: semantic extraction keeps the model within COTS
model-checker bounds), so the explicit approach is complete and fast here.

Counter semantics (all deterministic, hence width-invariant across
``--jobs``): ``mc.states_explored`` counts distinct *model* states the
search visited, ``mc.product_states`` counts *visited* product nodes
(not materialised ones), ``mc.peak_frontier`` the high-water mark of the
search frontier (outer + nested DFS stack, or the BFS queue).
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .. import obs
from .buchi import BuchiAutomaton, ltl_to_buchi
from .counterexample import CheckResult, Step, Trace
from .expr import And, Const, Expr, Not, Or
from .graph import StateGraph
from .ltl import Atom, BinOp, BoolConst, Formula, LTL_FALSE
from .model import Model

#: Strategy names accepted by the facade / ``_check_formula``.
STRATEGY_ON_THE_FLY = "on_the_fly"
STRATEGY_MATERIALISED = "materialised"


class CheckerError(Exception):
    """Raised when a property cannot be checked on the given model."""


# ---------------------------------------------------------------------------
# Safety fast path
# ---------------------------------------------------------------------------
def _check_invariant(model: Model, invariant: Expr,
                     name: str = "invariant") -> CheckResult:
    """BFS for a reachable state violating ``invariant`` (i.e. check G p)."""
    model.validate_expression(invariant)
    with obs.span("mc.check", property=name, mode="invariant") as span:
        graph = model.graph()
        holds = invariant.compile()
        root = graph.initial
        parents: Dict[int, Optional[Tuple[int, str]]] = {root: None}
        queue = deque([root])
        peak_frontier = 1
        violating: Optional[int] = None
        if not holds(graph.state(root)):
            violating = root
        while queue and violating is None:
            sid = queue.popleft()
            for label, successor in graph.successors(sid):
                if successor in parents:
                    continue
                parents[successor] = (sid, label)
                if not holds(graph.state(successor)):
                    violating = successor
                    break
                queue.append(successor)
            if len(queue) > peak_frontier:
                peak_frontier = len(queue)

        obs.inc("mc.checks")
        obs.inc("mc.states_explored", len(parents))
        obs.inc("mc.peak_frontier", peak_frontier)
        trace = (None if violating is None
                 else _sid_path_to_trace(graph, parents, violating))
    obs.observe("mc.check_seconds", span.duration)
    return CheckResult(name, holds=trace is None, counterexample=trace,
                       states_explored=len(parents),
                       peak_frontier=peak_frontier,
                       elapsed_seconds=span.duration)


def _sid_path_to_trace(graph: StateGraph, parents, sid: int) -> Trace:
    chain: List[Tuple[int, str]] = []
    cursor = sid
    while parents[cursor] is not None:
        predecessor, label = parents[cursor]
        chain.append((cursor, label))
        cursor = predecessor
    chain.reverse()
    trace = Trace(initial_state=dict(graph.state(cursor)))
    for state_sid, label in chain:
        trace.steps.append(Step(label, graph.state(state_sid)))
    return trace


# ---------------------------------------------------------------------------
# Formula utilities
# ---------------------------------------------------------------------------
def formula_to_expr(formula: Formula) -> Optional[Expr]:
    """Convert a purely propositional formula to an :class:`Expr`.

    Returns ``None`` when the formula contains temporal operators.
    """
    if isinstance(formula, BoolConst):
        return Const(formula.value)
    if isinstance(formula, Atom):
        return Not(formula.expr) if formula.negated else formula.expr
    if isinstance(formula, BinOp) and formula.op in ("and", "or"):
        left = formula_to_expr(formula.left)
        right = formula_to_expr(formula.right)
        if left is None or right is None:
            return None
        return And(left, right) if formula.op == "and" else Or(left, right)
    return None


def as_invariant(formula: Formula) -> Optional[Expr]:
    """If ``formula`` is ``G p`` with propositional ``p``, return ``p``."""
    if (isinstance(formula, BinOp) and formula.op == "R"
            and formula.left == LTL_FALSE):
        return formula_to_expr(formula.right)
    return None


# ---------------------------------------------------------------------------
# On-the-fly LTL via nested DFS over the implicit Büchi product
# ---------------------------------------------------------------------------
class _OnTheFlySearch:
    """Nested DFS (cyan/blue/red colouring) for an accepting lasso.

    The product is never materialised: a product node is the integer
    ``sid * |Q| + q`` and its successors are enumerated on demand from
    the interned state graph and the automaton's transition table, in
    exactly the order the materialised builder used (model successors
    outer, Büchi successors inner) so witness shapes stay deterministic.

    The outer (blue) DFS detects cycles closing into the active path
    early (when either endpoint is accepting); the nested (red) DFS
    launched post-order from accepting nodes finds the remaining
    accepting cycles.  Red colouring is permanent, so the whole search
    is linear in the number of visited product edges.
    """

    def __init__(self, graph: StateGraph, automaton: BuchiAutomaton):
        self.graph = graph
        self.automaton = automaton
        states = automaton.states
        self.nq = (max(states) + 1) if states else 1
        self._label_ok = {q: graph.label_evaluator(automaton.labels[q])
                          for q in states}
        self._succ_q = {q: automaton.successors(q) for q in states}
        self._accepting = automaton.accepting
        self.cyan: Set[int] = set()
        self.blue: Set[int] = set()
        self.red: Set[int] = set()
        #: every product node ever coloured (the visited-node counter)
        self.seen: Set[int] = set()
        #: blue-stack depth of each cyan node (for lasso reconstruction)
        self._position: Dict[int, int] = {}
        self.peak_frontier = 0
        self.trace: Optional[Trace] = None

    # ------------------------------------------------------------------
    def run(self) -> Optional[Trace]:
        root_sid = self.graph.initial
        for q in sorted(self.automaton.initial):
            if not self._label_ok[q](root_sid):
                continue
            root = root_sid * self.nq + q
            if root in self.blue:
                continue
            if self._dfs_blue(root):
                return self.trace
        return None

    def _edges(self, node: int) -> Iterator[Tuple[int, str]]:
        sid, q = divmod(node, self.nq)
        nq = self.nq
        succ_q = self._succ_q.get(q, ())
        label_ok = self._label_ok
        for label, successor_sid in self.graph.successors(sid):
            for next_q in succ_q:
                if label_ok[next_q](successor_sid):
                    yield successor_sid * nq + next_q, label

    def _is_accepting(self, node: int) -> bool:
        return node % self.nq in self._accepting

    # ------------------------------------------------------------------
    def _dfs_blue(self, root: int) -> bool:
        stack: List[Tuple[int, Optional[str], Iterator]] = []
        self._push_blue(stack, root, None)
        while stack:
            node, _, edges = stack[-1]
            for successor, label in edges:
                if successor in self.cyan:
                    # A cycle through the active path; accepting if either
                    # endpoint is (early exit without a nested search).
                    if (self._is_accepting(node)
                            or self._is_accepting(successor)):
                        self._build_trace(stack, successor,
                                          [(label, successor)])
                        return True
                    continue
                if successor not in self.blue:
                    self._push_blue(stack, successor, label)
                    break
            else:
                if self._is_accepting(node) and self._dfs_red(node, stack):
                    return True
                stack.pop()
                self.cyan.discard(node)
                del self._position[node]
                self.blue.add(node)
        return False

    def _push_blue(self, stack, node: int, label: Optional[str]) -> None:
        self.cyan.add(node)
        self.seen.add(node)
        self._position[node] = len(stack)
        stack.append((node, label, self._edges(node)))
        if len(stack) > self.peak_frontier:
            self.peak_frontier = len(stack)

    # ------------------------------------------------------------------
    def _dfs_red(self, seed: int, blue_stack) -> bool:
        parents: Dict[int, Optional[Tuple[int, str]]] = {seed: None}
        self.red.add(seed)
        stack: List[Tuple[int, Iterator]] = [(seed, self._edges(seed))]
        while stack:
            node, edges = stack[-1]
            for successor, label in edges:
                if successor in self.cyan:
                    # Close the lasso: seed ->(red path)-> node -> successor,
                    # where successor is an ancestor on the blue stack.
                    closing: List[Tuple[str, int]] = []
                    cursor = node
                    while parents[cursor] is not None:
                        predecessor, step_label = parents[cursor]
                        closing.append((step_label, cursor))
                        cursor = predecessor
                    closing.reverse()
                    closing.append((label, successor))
                    self._build_trace(blue_stack, successor, closing)
                    return True
                if successor not in self.red:
                    self.red.add(successor)
                    self.seen.add(successor)
                    parents[successor] = (node, label)
                    stack.append((successor, self._edges(successor)))
                    frontier = len(blue_stack) + len(stack)
                    if frontier > self.peak_frontier:
                        self.peak_frontier = frontier
                    break
            else:
                stack.pop()
        return False

    # ------------------------------------------------------------------
    def _build_trace(self, blue_stack, anchor: int,
                     closing: List[Tuple[str, int]]) -> None:
        """Assemble the lasso: blue prefix to ``anchor``, blue segment to
        the stack top, then the ``closing`` chain back to ``anchor``.

        Matches the materialised checker's convention: the final state
        equals the loop anchor and ``loop_start`` is the anchor's first
        state index.
        """
        graph = self.graph
        nq = self.nq
        anchor_index = self._position[anchor]
        trace = Trace(
            initial_state=dict(graph.state(blue_stack[0][0] // nq)))
        for node, label, _ in blue_stack[1:anchor_index + 1]:
            trace.steps.append(Step(label, graph.state(node // nq)))
        trace.loop_start = len(trace.steps)
        for node, label, _ in blue_stack[anchor_index + 1:]:
            trace.steps.append(Step(label, graph.state(node // nq)))
        for label, node in closing:
            trace.steps.append(Step(label, graph.state(node // nq)))
        self.trace = trace


def _check_ltl_on_the_fly(model: Model, formula: Formula,
                          name: str = "property") -> CheckResult:
    """Check ``model |= formula`` via the on-the-fly product search."""
    with obs.span("mc.check", property=name, mode="ltl") as span:
        automaton = ltl_to_buchi(formula.negate())
        graph = model.graph()
        search = _OnTheFlySearch(graph, automaton)
        trace = search.run()

        model_states = {node // search.nq for node in search.seen}
        model_states.add(graph.initial)
        obs.inc("mc.checks")
        obs.inc("mc.states_explored", len(model_states))
        obs.inc("mc.product_states", len(search.seen))
        obs.inc("mc.buchi_states", len(automaton.states))
        obs.inc("mc.peak_frontier", search.peak_frontier)
        obs.gauge_max("mc.max_product_states", len(search.seen))

        result = CheckResult(
            name, holds=trace is None,
            counterexample=trace,
            states_explored=len(model_states),
            product_states=len(search.seen),
            buchi_states=len(automaton.states),
            peak_frontier=search.peak_frontier,
        )
    result.elapsed_seconds = span.duration
    obs.observe("mc.check_seconds", span.duration)
    return result


# ---------------------------------------------------------------------------
# Reference engine: fully materialised Büchi product + Tarjan SCC
# ---------------------------------------------------------------------------
class _Product:
    """Reachable synchronous product of model and Büchi automaton."""

    def __init__(self, model: Model, automaton: BuchiAutomaton):
        self.model = model
        self.automaton = automaton
        self.nodes: Dict[Tuple[Tuple, int], int] = {}
        self.edges: Dict[int, List[Tuple[int, str]]] = {}
        self.initials: List[int] = []
        self.model_states_seen: Set[Tuple] = set()
        self._build()

    def _intern(self, model_key: Tuple, buchi_state: int) -> Tuple[int, bool]:
        key = (model_key, buchi_state)
        if key in self.nodes:
            return self.nodes[key], False
        node_id = len(self.nodes)
        self.nodes[key] = node_id
        self.edges[node_id] = []
        return node_id, True

    def _build(self) -> None:
        model = self.model
        automaton = self.automaton
        initial = model.initial_state()
        initial_key = model.key(initial)
        self.model_states_seen.add(initial_key)
        worklist: List[Tuple[Tuple, int]] = []
        for buchi_state in automaton.initial:
            if automaton.state_satisfies(buchi_state, initial):
                node_id, fresh = self._intern(initial_key, buchi_state)
                self.initials.append(node_id)
                if fresh:
                    worklist.append((initial_key, buchi_state))
        while worklist:
            model_key, buchi_state = worklist.pop()
            node_id = self.nodes[(model_key, buchi_state)]
            # successor_items memoises on the model, so properties sharing
            # a threat-instrumented model also share its state graph.
            for label, successor_key in model.successor_items(model_key):
                self.model_states_seen.add(successor_key)
                successor_state = model.unkey(successor_key)
                for next_buchi in automaton.successors(buchi_state):
                    if not automaton.state_satisfies(next_buchi,
                                                     successor_state):
                        continue
                    succ_id, fresh = self._intern(successor_key, next_buchi)
                    self.edges[node_id].append((succ_id, label))
                    if fresh:
                        worklist.append((successor_key, next_buchi))

    def accepting_nodes(self) -> Set[int]:
        return {node_id for (key, node_id) in
                ((k, v) for k, v in self.nodes.items())
                if key[1] in self.automaton.accepting}

    def node_state(self, node_id: int) -> Dict:
        for (model_key, _buchi), nid in self.nodes.items():
            if nid == node_id:
                return self.model.unkey(model_key)
        raise CheckerError(f"unknown product node {node_id}")


def _tarjan_sccs(edges: Dict[int, List[Tuple[int, str]]],
                 roots: Sequence[int]) -> List[List[int]]:
    """Iterative Tarjan SCC over the product graph."""
    index_counter = [0]
    indices: Dict[int, int] = {}
    lowlinks: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []

    for root in roots:
        if root in indices:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter[0]
                lowlinks[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = edges.get(node, [])
            while child_index < len(successors):
                successor = successors[child_index][0]
                child_index += 1
                if successor not in indices:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return sccs


def _bfs_path(edges, sources: Sequence[int], targets: Set[int],
              restrict: Optional[Set[int]] = None,
              skip_trivial_start: bool = False):
    """Shortest path (list of (node, label)) from any source to any target."""
    parents: Dict[int, Optional[Tuple[int, str]]] = {}
    queue = deque()
    for source in sources:
        parents[source] = None
        queue.append(source)
        if source in targets and not skip_trivial_start:
            return _reconstruct(parents, source)
    while queue:
        node = queue.popleft()
        for successor, label in edges.get(node, []):
            if restrict is not None and successor not in restrict:
                continue
            if successor in parents:
                if successor in targets and skip_trivial_start:
                    # allow returning to a source through a real edge
                    chain = _reconstruct(parents, node)
                    chain.append((successor, label))
                    return chain
                continue
            parents[successor] = (node, label)
            if successor in targets:
                return _reconstruct(parents, successor)
            queue.append(successor)
    return None


def _reconstruct(parents, node):
    chain = []
    cursor = node
    while parents[cursor] is not None:
        predecessor, label = parents[cursor]
        chain.append((cursor, label))
        cursor = predecessor
    chain.append((cursor, None))
    chain.reverse()
    return chain


def check_ltl_materialised(model: Model, formula: Formula,
                           name: str = "property") -> CheckResult:
    """Reference LTL engine: materialise the product, Tarjan, BFS witness.

    Verdict-equivalent to the on-the-fly search by construction (both
    decide emptiness of the same product language); kept so the fast
    path has an independent implementation to be property-tested
    against.  Witness *shapes* may differ — both satisfy
    :func:`tests.mc.ltl_semantics.trace_violates`.
    """
    for expr in formula.atoms():
        model.validate_expression(expr)

    invariant = as_invariant(formula)
    if invariant is not None:
        return _check_invariant(model, invariant, name)

    with obs.span("mc.check", property=name, mode="ltl") as span:
        automaton = ltl_to_buchi(formula.negate())
        product = _Product(model, automaton)
        accepting = product.accepting_nodes()
        sccs = _tarjan_sccs(product.edges, product.initials)

        witness_scc: Optional[List[int]] = None
        for component in sccs:
            members = set(component)
            if not (members & accepting):
                continue
            if len(component) > 1:
                witness_scc = component
                break
            node = component[0]
            if any(successor == node
                   for successor, _ in product.edges[node]):
                witness_scc = component
                break

        obs.inc("mc.checks")
        obs.inc("mc.states_explored", len(product.model_states_seen))
        obs.inc("mc.product_states", len(product.nodes))
        obs.inc("mc.buchi_states", len(automaton.states))
        obs.gauge_max("mc.max_product_states", len(product.nodes))

        result = CheckResult(
            name, holds=witness_scc is None,
            states_explored=len(product.model_states_seen),
            product_states=len(product.nodes),
            buchi_states=len(automaton.states),
        )
        if witness_scc is not None:
            members = set(witness_scc)
            target_accepting = members & accepting
            prefix = _bfs_path(product.edges, product.initials,
                               target_accepting)
            if prefix is None:  # pragma: no cover - reachable by SCC
                raise CheckerError(
                    "internal error: accepting SCC unreachable")
            anchor = prefix[-1][0]
            cycle = _bfs_path(product.edges, [anchor], {anchor},
                              restrict=members, skip_trivial_start=True)
            if cycle is None:  # pragma: no cover - cycle exists in SCC
                raise CheckerError(
                    "internal error: no cycle in accepting SCC")

            node_states = {}
            for (model_key, _buchi), node_id in product.nodes.items():
                node_states.setdefault(node_id, model.unkey(model_key))

            trace = Trace(initial_state=node_states[prefix[0][0]])
            for node, label in prefix[1:]:
                trace.steps.append(Step(label, node_states[node]))
            trace.loop_start = len(trace.steps)
            for node, label in cycle[1:]:
                trace.steps.append(Step(label, node_states[node]))
            # The lasso's final state equals the loop anchor; keep
            # loop_start pointing at the anchor state index.
            result.counterexample = trace
    result.elapsed_seconds = span.duration
    obs.observe("mc.check_seconds", span.duration)
    return result


# ---------------------------------------------------------------------------
# Dispatch + deprecation shims
# ---------------------------------------------------------------------------
def _check_formula(model: Model, formula: Formula,
                   name: str = "property",
                   strategy: str = STRATEGY_ON_THE_FLY) -> CheckResult:
    """Validate, take the invariant fast path, dispatch on strategy."""
    for expr in formula.atoms():
        model.validate_expression(expr)
    invariant = as_invariant(formula)
    if invariant is not None:
        return _check_invariant(model, invariant, name)
    if strategy == STRATEGY_MATERIALISED:
        return check_ltl_materialised(model, formula, name)
    if strategy != STRATEGY_ON_THE_FLY:
        raise CheckerError(f"unknown checking strategy {strategy!r}")
    return _check_ltl_on_the_fly(model, formula, name)


def check_invariant(model: Model, invariant: Expr,
                    name: str = "invariant") -> CheckResult:
    """Deprecated shim — route checks through
    :class:`repro.mc.ModelChecker` instead."""
    warnings.warn(
        "check_invariant() is deprecated; use "
        "repro.mc.ModelChecker().check(model, CheckRequest(...))",
        DeprecationWarning, stacklevel=2)
    return _check_invariant(model, invariant, name)


def check_ltl(model: Model, formula: Formula,
              name: str = "property") -> CheckResult:
    """Deprecated shim — route checks through
    :class:`repro.mc.ModelChecker` instead."""
    warnings.warn(
        "check_ltl() is deprecated; use "
        "repro.mc.ModelChecker().check(model, CheckRequest(...))",
        DeprecationWarning, stacklevel=2)
    return _check_formula(model, formula, name)
