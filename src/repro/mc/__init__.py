"""Symbolic/explicit model-checking substrate (the paper's NuXmv role).

Layers:

- :mod:`repro.mc.expr` — finite-domain state predicates + guard parser;
- :mod:`repro.mc.ltl` — LTL formulas (NNF by construction) + parser;
- :mod:`repro.mc.buchi` — GPVW tableau LTL→Büchi translation;
- :mod:`repro.mc.model` — guarded-command transition systems (SMV stand-in);
- :mod:`repro.mc.checker` — invariant BFS and Büchi-product LTL checking;
- :mod:`repro.mc.counterexample` — lasso traces consumed by the CEGAR loop.
"""

from .expr import (And, Compare, Const, Expr, ExprError, FALSE, Not, Or,
                   TRUE, conjoin, parse_expr, var_equals)
from .ltl import (Atom, F, Formula, G, Implies, LTLError, R, U, X, And_,
                  Or_, Not_, LTL_FALSE, LTL_TRUE, atom, closure_size,
                  parse_ltl)
from .buchi import BuchiAutomaton, ltl_to_buchi
from .model import (Choice, Command, Model, ModelError, Plus, Ref, Variable)
from .checker import (CheckerError, as_invariant, check_invariant, check_ltl,
                      formula_to_expr)
from .counterexample import ADVERSARY_PREFIX, CheckResult, Step, Trace
from .smv import SmvExportError, to_smv

__all__ = [
    "And", "Compare", "Const", "Expr", "ExprError", "FALSE", "Not", "Or",
    "TRUE", "conjoin", "parse_expr", "var_equals",
    "Atom", "F", "Formula", "G", "Implies", "LTLError", "R", "U", "X",
    "And_", "Or_", "Not_", "LTL_FALSE", "LTL_TRUE", "atom", "closure_size",
    "parse_ltl",
    "BuchiAutomaton", "ltl_to_buchi",
    "Choice", "Command", "Model", "ModelError", "Plus", "Ref", "Variable",
    "CheckerError", "as_invariant", "check_invariant", "check_ltl",
    "formula_to_expr",
    "ADVERSARY_PREFIX", "CheckResult", "Step", "Trace",
    "SmvExportError", "to_smv",
]
