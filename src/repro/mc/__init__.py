"""Symbolic/explicit model-checking substrate (the paper's NuXmv role).

Layers:

- :mod:`repro.mc.expr` — finite-domain state predicates + guard parser;
- :mod:`repro.mc.ltl` — LTL formulas (NNF by construction) + parser;
- :mod:`repro.mc.buchi` — GPVW tableau LTL→Büchi translation, memoised
  per normalised formula (alpha-renamed atoms, canonical operators);
- :mod:`repro.mc.model` — guarded-command transition systems (SMV
  stand-in) with content fingerprints;
- :mod:`repro.mc.graph` — dense-integer interning of reachable state
  graphs (shared successor expansion + literal truth columns);
- :mod:`repro.mc.checker` — invariant BFS and on-the-fly nested-DFS
  Büchi-product LTL checking (plus the materialised reference engine);
- :mod:`repro.mc.cache` — persistent cross-run verdict cache;
- :mod:`repro.mc.api` — the supported :class:`ModelChecker` facade;
- :mod:`repro.mc.counterexample` — lasso traces consumed by the CEGAR
  loop.

The supported checking surface is :class:`ModelChecker` /
:class:`CheckRequest` / :class:`CheckResult`; the legacy module-level
``check_ltl`` / ``check_invariant`` functions remain as deprecation
shims.
"""

from .expr import (And, Compare, Const, Expr, ExprError, FALSE, Not, Or,
                   TRUE, conjoin, parse_expr, var_equals)
from .ltl import (Atom, F, Formula, G, Implies, LTLError, R, U, X, And_,
                  Or_, Not_, LTL_FALSE, LTL_TRUE, atom, closure_size,
                  parse_ltl)
from .buchi import (BuchiAutomaton, buchi_cache_stats, clear_buchi_cache,
                    ltl_to_buchi, normalise_ltl, normalised_key)
from .model import (Choice, Command, Model, ModelError, Plus, Ref, Variable)
from .graph import StateGraph
from .checker import (CheckerError, STRATEGY_MATERIALISED,
                      STRATEGY_ON_THE_FLY, as_invariant, check_invariant,
                      check_ltl, check_ltl_materialised, formula_to_expr)
from .counterexample import ADVERSARY_PREFIX, CheckResult, Step, Trace
from .cache import McCacheError, McVerdictCache, verdict_digest
from .api import CheckRequest, ModelChecker
from .smv import SmvExportError, to_smv

__all__ = [
    "And", "Compare", "Const", "Expr", "ExprError", "FALSE", "Not", "Or",
    "TRUE", "conjoin", "parse_expr", "var_equals",
    "Atom", "F", "Formula", "G", "Implies", "LTLError", "R", "U", "X",
    "And_", "Or_", "Not_", "LTL_FALSE", "LTL_TRUE", "atom", "closure_size",
    "parse_ltl",
    "BuchiAutomaton", "buchi_cache_stats", "clear_buchi_cache",
    "ltl_to_buchi", "normalise_ltl", "normalised_key",
    "Choice", "Command", "Model", "ModelError", "Plus", "Ref", "Variable",
    "StateGraph",
    "CheckerError", "STRATEGY_MATERIALISED", "STRATEGY_ON_THE_FLY",
    "as_invariant", "check_invariant", "check_ltl",
    "check_ltl_materialised", "formula_to_expr",
    "ADVERSARY_PREFIX", "CheckResult", "Step", "Trace",
    "McCacheError", "McVerdictCache", "verdict_digest",
    "CheckRequest", "ModelChecker",
    "SmvExportError", "to_smv",
]
