"""Counterexample traces produced by the model checker.

A counterexample is a *lasso*: a finite prefix of states followed by a loop
(for liveness violations), or a plain finite prefix (safety violations,
where any infinite continuation stays violating).  Each step records the
command label that produced it, which is what the CEGAR loop inspects: the
labels of adversary commands (``adv_*``) are the "adversarial actions" whose
cryptographic feasibility the protocol verifier must confirm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import Value


@dataclass(frozen=True)
class Step:
    """One step of a counterexample: the command fired and the state reached."""

    label: str
    state: Dict[str, Value]

    def __post_init__(self):
        object.__setattr__(self, "state", dict(self.state))


#: Prefix that marks commands injected by the threat instrumentor.
ADVERSARY_PREFIX = "adv_"


@dataclass
class Trace:
    """A (possibly lassoing) execution fragment witnessing a violation."""

    initial_state: Dict[str, Value]
    steps: List[Step] = field(default_factory=list)
    loop_start: Optional[int] = None

    @property
    def is_lasso(self) -> bool:
        return self.loop_start is not None

    @property
    def states(self) -> List[Dict[str, Value]]:
        return [self.initial_state] + [step.state for step in self.steps]

    @property
    def labels(self) -> List[str]:
        return [step.label for step in self.steps]

    def adversary_steps(self) -> List[Step]:
        """The steps the Dolev-Yao adversary took — input to the CPV check."""
        return [step for step in self.steps
                if step.label.startswith(ADVERSARY_PREFIX)]

    def adversary_actions(self) -> List[str]:
        return [step.label for step in self.adversary_steps()]

    def to_dict(self) -> Dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "initial_state": dict(self.initial_state),
            "steps": [{"label": step.label, "state": dict(step.state)}
                      for step in self.steps],
            "loop_start": self.loop_start,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Trace":
        return cls(
            initial_state=dict(payload["initial_state"]),
            steps=[Step(item["label"], item["state"])
                   for item in payload.get("steps", [])],
            loop_start=payload.get("loop_start"),
        )

    def project(self, variables: Sequence[str]) -> List[Tuple[Value, ...]]:
        """The trace restricted to the given variables (for reporting)."""
        return [tuple(state[name] for name in variables)
                for state in self.states]

    _IDLE_PREFIXES = ("adv_pass", "stutter", "ue_skip", "mme_skip")

    def format(self, variables: Optional[Sequence[str]] = None,
               hide_idle: bool = False) -> str:
        """Human-readable rendering used in attack reports.

        ``hide_idle=True`` elides pass/skip/stutter steps outside the
        loop region (step numbering is preserved, elisions are marked),
        which keeps dossier counterexamples focused on the adversarial
        and protocol actions.
        """
        lines = []
        names = list(variables) if variables else sorted(self.initial_state)
        header = "step  command" + " " * 25 + "  ".join(names)
        lines.append(header)

        def render(index: int, label: str, state: Dict[str, Value]) -> str:
            marker = "*" if (self.loop_start is not None
                             and index >= self.loop_start) else " "
            values = "  ".join(str(state[name]) for name in names)
            return f"{marker}{index:>4}  {label:<30}  {values}"

        def idle(index: int, label: str) -> bool:
            if not hide_idle:
                return False
            if self.loop_start is not None and index >= self.loop_start:
                return False
            return label.startswith(self._IDLE_PREFIXES)

        lines.append(render(0, "(init)", self.initial_state))
        elided = 0
        for index, step in enumerate(self.steps, start=1):
            if idle(index, step.label):
                elided += 1
                continue
            if elided:
                lines.append(f"      ... {elided} idle step(s) elided")
                elided = 0
            lines.append(render(index, step.label, step.state))
        if elided:
            lines.append(f"      ... {elided} idle step(s) elided")
        if self.loop_start is not None:
            lines.append(f"(loop back to step {self.loop_start})")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class CheckResult:
    """Verdict of one model-checking run.

    Counter semantics under the on-the-fly product search:

    - ``states_explored`` — distinct *model* states touched by the
      search (visited product nodes projected onto the model);
    - ``product_states`` — product nodes actually visited; the search
      stops at the first accepting cycle, so this is typically far
      below the materialised product size the old checker reported;
    - ``peak_frontier`` — the high-water mark of the search's DFS/BFS
      frontier (outer + nested stack), the memory-proportional figure;
    - ``from_cache`` — verdict served by the persistent
      :class:`~repro.mc.cache.McVerdictCache` without any exploration.
    """

    property_name: str
    holds: bool
    counterexample: Optional[Trace] = None
    states_explored: int = 0
    product_states: int = 0
    buchi_states: int = 0
    peak_frontier: int = 0
    elapsed_seconds: float = 0.0
    from_cache: bool = False

    @property
    def violated(self) -> bool:
        return not self.holds

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else "VIOLATED"
        return (f"{self.property_name}: {verdict} "
                f"({self.states_explored} states, "
                f"{self.elapsed_seconds:.3f}s)")

    def to_dict(self) -> Dict:
        """Schema-stamped wire form (round-trips via :meth:`from_dict`)."""
        from .. import schema
        return schema.stamp({
            "property_name": self.property_name,
            "holds": self.holds,
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample is not None else None),
            "states_explored": self.states_explored,
            "product_states": self.product_states,
            "buchi_states": self.buchi_states,
            "peak_frontier": self.peak_frontier,
            "elapsed_seconds": self.elapsed_seconds,
            "from_cache": self.from_cache,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "CheckResult":
        """Rebuild from a wire payload (typed error on unknown major)."""
        from .. import schema
        schema.check(payload, "CheckResult")
        counterexample = payload.get("counterexample")
        return cls(
            property_name=payload["property_name"],
            holds=payload["holds"],
            counterexample=(Trace.from_dict(counterexample)
                            if counterexample is not None else None),
            states_explored=payload.get("states_explored", 0),
            product_states=payload.get("product_states", 0),
            buchi_states=payload.get("buchi_states", 0),
            peak_frontier=payload.get("peak_frontier", 0),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            from_cache=payload.get("from_cache", False),
        )
