"""Persistent cross-run model-checking verdict cache.

A verdict is a pure function of ``(transition system, formula, threat
configuration)``: the first two are content-hashed
(:meth:`repro.mc.model.Model.fingerprint`,
:func:`repro.mc.buchi.normalised_key`) and the threat configuration —
which determines the instrumented model's *meaning* across CEGAR
refinements — rides along as an opaque digest supplied by the caller.
Re-analysing an unchanged implementation therefore skips model checking
entirely: every CEGAR iteration's check (refined configs get distinct
digests) is answered from disk, and the run's ``mc.checks`` counter
stays at zero.

The layout mirrors :class:`repro.store.ResultStore` (this cache is the
MC-layer sibling of the report-level store and is re-exported from
:mod:`repro.store`): one schema-stamped JSON file per entry, sharded by
digest prefix, atomic writes, quarantine-as-miss for corrupted entries.
Hits/misses/writes are counted in the :mod:`repro.obs` registry only
(``mc.verdict_cache_*``) — cache warmth is scheduling/state-dependent
and must not enter the canonical per-property stats.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs, schema
from .counterexample import CheckResult

__all__ = ["McCacheError", "McVerdictCache", "verdict_digest"]


class McCacheError(Exception):
    """Raised for malformed cache operations (bad digests, bad roots)."""


def verdict_digest(model_fingerprint: str, formula_key: str,
                   threat_digest: str = "") -> str:
    """Content address of one check: SHA-256 over the three identities."""
    digest = hashlib.sha256()
    digest.update(model_fingerprint.encode())
    digest.update(b"\x00")
    digest.update(formula_key.encode())
    digest.update(b"\x00")
    digest.update(threat_digest.encode())
    return digest.hexdigest()


class McVerdictCache:
    """JSON-on-disk verdict cache, sharded by digest prefix."""

    QUARANTINE = "quarantine"

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef"
                                      for c in digest):
            raise McCacheError(f"malformed digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    def put(self, digest: str, result: CheckResult,
            key: Optional[Dict] = None) -> Path:
        """File a verdict under its digest (atomic; last writer wins)."""
        entry = schema.stamp({
            "digest": digest,
            "key": key,
            "result": result.to_dict(),
        })
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{digest[:8]}-",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                obs.count("mc.verdict_cache_tmp_unlink_failures")
            raise
        obs.count("mc.verdict_cache_writes")
        return path

    def get(self, digest: str) -> Optional[CheckResult]:
        """The stored verdict (``from_cache=True``), or ``None`` on a miss.

        A corrupted entry (unparseable JSON, digest mismatch, unknown
        wire-format major) is quarantined and reported as a miss — a bad
        file must never fail an analysis or poison future lookups.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            obs.count("mc.verdict_cache_misses")
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict):
                raise ValueError(f"entry is {type(entry).__name__}, "
                                 f"not an object")
            schema.check(entry, "mc cache entry")
            if entry.get("digest") != digest:
                raise ValueError(f"digest mismatch: entry says "
                                 f"{entry.get('digest')!r}")
            result = CheckResult.from_dict(entry["result"])
        except (ValueError, KeyError, TypeError,
                schema.SchemaVersionError) as exc:
            self._quarantine(path, exc)
            obs.count("mc.verdict_cache_misses")
            return None
        obs.count("mc.verdict_cache_hits")
        result.from_cache = True
        return result

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: Exception) -> None:
        quarantine = self.root / self.QUARANTINE
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        with self._lock:
            try:
                os.replace(path, target)
            except OSError:       # pragma: no cover - already moved/gone
                obs.count("mc.verdict_cache_quarantine_failures")
                return
        obs.count("mc.verdict_cache_quarantined")

    # ------------------------------------------------------------------
    def digests(self) -> List[str]:
        """Every digest currently filed (sorted; excludes quarantine)."""
        found = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == self.QUARANTINE:
                continue
            for entry in sorted(shard.glob("*.json")):
                found.append(entry.stem)
        return found

    def stats(self) -> Dict[str, int]:
        quarantined = 0
        quarantine = self.root / self.QUARANTINE
        if quarantine.is_dir():
            quarantined = sum(1 for _ in quarantine.iterdir())
        return {"entries": len(self.digests()),
                "quarantined": quarantined}
