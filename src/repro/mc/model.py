"""Finite-state transition system description (our SMV-like language).

The paper's model generator "outputs a SMV description of the model"; here
the equivalent target is a guarded-command transition system: finite-domain
variables, a set of initial assignments, and labelled commands
``guard -> updates``.  Non-determinism comes from (a) several commands being
enabled in the same state — this is how the Dolev-Yao adversary's
drop/pass/modify choice is encoded — and (b) :class:`Choice` updates.

Update right-hand sides may be literals, :class:`Ref` (copy a current
variable value), :class:`Plus` (bounded increment, for counters such as the
NAS sequence number), or :class:`Choice` over any of these.

The explicit-state checker (:mod:`repro.mc.checker`) interprets these
models; the deterministic stutter rule (a state with no enabled command
loops to itself) keeps all executions infinite, as LTL semantics requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, Iterator, List, Mapping, Optional, Tuple,
                    Union)

from .expr import Expr, Value


class ModelError(Exception):
    """Raised for ill-formed models (unknown variables, domain violations)."""


@dataclass(frozen=True)
class Variable:
    """A state variable with an explicit finite domain."""

    name: str
    domain: Tuple[Value, ...]

    def __post_init__(self):
        if not self.domain:
            raise ModelError(f"variable {self.name!r} has empty domain")
        object.__setattr__(self, "_members", frozenset(self.domain))

    def validate(self, value: Value) -> None:
        if value not in self._members:
            raise ModelError(
                f"value {value!r} outside domain of {self.name!r}")


@dataclass(frozen=True)
class Ref:
    """Update RHS: the *current* value of another variable."""

    variable: str


@dataclass(frozen=True)
class Plus:
    """Update RHS: ``min(current + amount, ceiling)`` of an int variable.

    Saturating rather than wrapping: protocol counters in the extracted
    models are abstracted to small saturating integers.
    """

    variable: str
    amount: int = 1
    ceiling: Optional[int] = None


@dataclass(frozen=True)
class Choice:
    """Update RHS: a non-deterministic choice among alternatives."""

    options: Tuple[Union[Value, Ref, Plus], ...]

    def __init__(self, *options):
        if not options:
            raise ModelError("Choice requires at least one option")
        object.__setattr__(self, "options", tuple(options))


UpdateRHS = Union[Value, Ref, Plus, Choice]


@dataclass(frozen=True)
class Command:
    """A labelled guarded command ``label: guard -> updates``."""

    label: str
    guard: Expr
    updates: Mapping[str, UpdateRHS]

    def __post_init__(self):
        object.__setattr__(self, "updates", dict(self.updates))


def _resolve(rhs: Union[Value, Ref, Plus], state: Mapping[str, Value]) -> Value:
    if isinstance(rhs, Ref):
        return state[rhs.variable]
    if isinstance(rhs, Plus):
        current = state[rhs.variable]
        if not isinstance(current, int) or isinstance(current, bool):
            raise ModelError(f"Plus on non-integer variable {rhs.variable!r}")
        value = current + rhs.amount
        if rhs.ceiling is not None:
            value = min(value, rhs.ceiling)
        return value
    return rhs


@dataclass
class Model:
    """A guarded-command transition system."""

    name: str
    variables: List[Variable]
    init: Dict[str, Value]
    commands: List[Command] = field(default_factory=list)
    fairness: List[Expr] = field(default_factory=list)

    def __post_init__(self):
        self._by_name = {v.name: v for v in self.variables}
        if len(self._by_name) != len(self.variables):
            raise ModelError("duplicate variable names")
        for name, value in self.init.items():
            self.variable(name).validate(value)
        missing = set(self._by_name) - set(self.init)
        if missing:
            raise ModelError(f"variables without initial value: {missing}")
        self._order = tuple(sorted(self._by_name))
        self._successor_cache: Dict[Tuple[Value, ...],
                                    List[Tuple[str, Tuple[Value, ...]]]] = {}
        self._compiled_guards: List = []
        self._graph = None
        self._fingerprint: Optional[str] = None

    def __getstate__(self):
        # Compiled guards are closures (unpicklable), and the interned
        # state graph holds compiled literal columns; the engine rebuilds
        # both lazily on first use after transfer.
        state = dict(self.__dict__)
        state["_compiled_guards"] = []
        state["_graph"] = None
        return state

    # ------------------------------------------------------------------
    def variable(self, name: str) -> Variable:
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r}") from None

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return self._order

    def add_command(self, label: str, guard: Expr,
                    updates: Mapping[str, UpdateRHS]) -> Command:
        for name in updates:
            self.variable(name)  # existence check
        command = Command(label, guard, updates)
        self.commands.append(command)
        self._successor_cache.clear()
        self._graph = None
        self._fingerprint = None
        return command

    # ------------------------------------------------------------------
    # Derived, cached views
    # ------------------------------------------------------------------
    def graph(self):
        """The interned :class:`~repro.mc.graph.StateGraph` of this model.

        Built lazily and cached on the instance, so every property (and
        every CEGAR iteration) checked against the same instrumented
        model shares one state-id table, one successor expansion and one
        set of literal truth columns.  ``add_command`` invalidates.
        """
        if self._graph is None:
            from .graph import StateGraph
            self._graph = StateGraph(self)
        return self._graph

    def fingerprint(self) -> str:
        """Content hash of the transition system (not the instance).

        Digests variables/domains, initial assignments, the command list
        (order included — it fixes successor enumeration order and hence
        counterexample shape) and fairness constraints, but *not* the
        model name: the same instrumented system built under different
        display names must hit the same persistent verdict-cache entry.
        """
        if self._fingerprint is None:
            import hashlib
            digest = hashlib.sha256()
            for variable in sorted(self.variables, key=lambda v: v.name):
                digest.update(
                    f"var {variable.name}={variable.domain!r}\n".encode())
            for name in sorted(self.init):
                digest.update(f"init {name}={self.init[name]!r}\n".encode())
            for command in self.commands:
                updates = sorted((k, repr(v))
                                 for k, v in command.updates.items())
                digest.update(f"cmd {command.label}|{command.guard}"
                              f"|{updates!r}\n".encode())
            for constraint in self.fairness:
                digest.update(f"fair {constraint}\n".encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Execution semantics
    # ------------------------------------------------------------------
    def key(self, state: Mapping[str, Value]) -> Tuple[Value, ...]:
        """Hashable canonical form of a state dict."""
        return tuple(state[name] for name in self._order)

    def unkey(self, key: Tuple[Value, ...]) -> Dict[str, Value]:
        return dict(zip(self._order, key))

    def initial_state(self) -> Dict[str, Value]:
        return dict(self.init)

    def enabled_commands(self, state: Mapping[str, Value]) -> List[Command]:
        if len(self._compiled_guards) != len(self.commands):
            self._compiled_guards = [c.guard.compile()
                                     for c in self.commands]
        return [c for c, guard in zip(self.commands, self._compiled_guards)
                if guard(state)]

    def apply(self, state: Mapping[str, Value],
              command: Command) -> Iterator[Dict[str, Value]]:
        """Yield every successor the command can produce from ``state``."""
        choice_items = [(name, rhs) for name, rhs in command.updates.items()
                        if isinstance(rhs, Choice)]
        plain_items = [(name, rhs) for name, rhs in command.updates.items()
                       if not isinstance(rhs, Choice)]

        base = dict(state)
        for name, rhs in plain_items:
            value = _resolve(rhs, state)
            self.variable(name).validate(value)
            base[name] = value
        if not choice_items:
            yield base
            return

        def expand(index: int, partial: Dict[str, Value]):
            if index == len(choice_items):
                yield dict(partial)
                return
            name, choice = choice_items[index]
            for option in choice.options:
                value = _resolve(option, state)
                self.variable(name).validate(value)
                partial[name] = value
                yield from expand(index + 1, partial)

        yield from expand(0, base)

    def successors(
        self, state: Mapping[str, Value]
    ) -> Iterator[Tuple[str, Dict[str, Value]]]:
        """Yield ``(command label, successor state)`` pairs.

        A deadlocked state stutters (self-loop labelled ``"stutter"``) so
        that every maximal execution is infinite.
        """
        produced = False
        for command in self.enabled_commands(state):
            for successor in self.apply(state, command):
                produced = True
                yield command.label, successor
        if not produced:
            yield "stutter", dict(state)

    def successor_items(
        self, key: Tuple[Value, ...]
    ) -> List[Tuple[str, Tuple[Value, ...]]]:
        """``(label, successor key)`` pairs for the state with this key.

        Memoised on the model instance: the state graph is a function of
        the commands alone, so explorations launched by different
        properties (or different Büchi products) against the same model
        share one expansion per state.  ``add_command`` invalidates.
        """
        cached = self._successor_cache.get(key)
        if cached is None:
            state = self.unkey(key)
            cached = [(label, self.key(successor))
                      for label, successor in self.successors(state)]
            self._successor_cache[key] = cached
        return cached

    def state_count_bound(self) -> int:
        """Product of domain sizes — upper bound used in scalability stats."""
        bound = 1
        for variable in self.variables:
            bound *= len(variable.domain)
        return bound

    def validate_expression(self, expr: Expr) -> None:
        """Check that ``expr`` only mentions declared variables."""
        unknown = expr.variables() - set(self._by_name)
        if unknown:
            raise ModelError(f"expression uses unknown variables: {unknown}")
