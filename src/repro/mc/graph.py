"""Dense-integer interning of a model's reachable state graph.

The explicit-state checker used to pass hashable state *tuples* around
and re-evaluate Büchi entry labels against freshly materialised state
dicts on every product edge.  :class:`StateGraph` replaces both costs
with integer ids:

- every reachable state key is interned once into a dense ``int`` id,
  so product nodes become small ints (``sid * |Q| + q``) instead of
  ``(tuple, int)`` pairs;
- successor lists are expanded lazily through
  :meth:`~repro.mc.model.Model.successor_items` and cached as
  ``(label, successor id)`` tuples — built at most once per model no
  matter how many properties or CEGAR iterations explore it;
- atomic predicates are evaluated at most once per ``(literal, state)``
  via per-literal truth columns (one growable list per literal, indexed
  by state id), which is what makes on-the-fly product exploration
  cheaper than the old per-edge re-evaluation.

A graph is owned by its :class:`~repro.mc.model.Model` (see
``Model.graph()``) so all checks against the same instrumented model
share one interning table, one successor expansion and one set of truth
columns.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .ltl import Atom

Key = Tuple


class StateGraph:
    """Lazily expanded, integer-interned view of a model's state graph."""

    __slots__ = ("model", "_keys", "_index", "_states", "_succ",
                 "_columns", "initial")

    def __init__(self, model):
        self.model = model
        self._keys: List[Key] = []
        self._index: Dict[Key, int] = {}
        self._states: List[Dict] = []
        #: per-state successor tuples, ``None`` until first expansion
        self._succ: List[Optional[Tuple[Tuple[str, int], ...]]] = []
        #: literal -> truth column (list indexed by state id, lazily filled)
        self._columns: Dict[Atom, List[Optional[bool]]] = {}
        self.initial = self.intern(model.key(model.initial_state()))

    # ------------------------------------------------------------------
    def intern(self, key: Key) -> int:
        """The dense id of ``key``, assigning a fresh one on first sight."""
        sid = self._index.get(key)
        if sid is None:
            sid = len(self._keys)
            self._index[key] = sid
            self._keys.append(key)
            self._states.append(self.model.unkey(key))
            self._succ.append(None)
        return sid

    def key_of(self, sid: int) -> Key:
        return self._keys[sid]

    def state(self, sid: int) -> Dict:
        """The state dict for ``sid`` (shared — callers must not mutate)."""
        return self._states[sid]

    def __len__(self) -> int:
        """States interned so far (== states touched by any exploration)."""
        return len(self._keys)

    # ------------------------------------------------------------------
    def successors(self, sid: int) -> Tuple[Tuple[str, int], ...]:
        """``(label, successor id)`` pairs, expanded on first request.

        Expansion order is exactly the model's ``successor_items`` order,
        so explorations over the graph visit states in the same order the
        tuple-based checker did — determinism of counters and traces is
        preserved.
        """
        cached = self._succ[sid]
        if cached is None:
            cached = tuple(
                (label, self.intern(successor_key))
                for label, successor_key in
                self.model.successor_items(self._keys[sid]))
            self._succ[sid] = cached
        return cached

    def expanded_count(self) -> int:
        """States whose successor sets have been computed."""
        return sum(1 for entry in self._succ if entry is not None)

    # ------------------------------------------------------------------
    def literal_evaluator(self, literal: Atom) -> Callable[[int], bool]:
        """A memoised ``sid -> bool`` evaluator for one literal.

        Each distinct literal gets one truth column shared by every
        check against this model, so an atom appearing in many of the 62
        properties (or in many Büchi states of one automaton) is
        evaluated at most once per reachable state.
        """
        column = self._columns.get(literal)
        if column is None:
            column = self._columns[literal] = []
        compiled = literal.compile()
        states = self._states

        def evaluate(sid: int) -> bool:
            if sid >= len(column):
                column.extend([None] * (sid + 1 - len(column)))
            value = column[sid]
            if value is None:
                value = column[sid] = compiled(states[sid])
            return value

        return evaluate

    def label_evaluator(self, literals: Tuple[Atom, ...]
                        ) -> Callable[[int], bool]:
        """Conjunction evaluator for a Büchi entry label (literal tuple)."""
        if not literals:
            return lambda sid: True
        evaluators = [self.literal_evaluator(literal)
                      for literal in literals]
        if len(evaluators) == 1:
            return evaluators[0]

        def evaluate(sid: int) -> bool:
            for check in evaluators:
                if not check(sid):
                    return False
            return True

        return evaluate
