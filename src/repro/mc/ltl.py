"""Linear temporal logic formulas over state-variable atoms.

Properties in the paper are rich temporal properties ("safety, liveliness,
correspondence").  We support full propositional LTL with ``X`` (next),
``U`` (until), ``R`` (release), ``F`` (eventually) and ``G`` (globally),
interpreted over infinite executions of the threat-instrumented model.

Construction can be programmatic (:func:`G`, :func:`F`, ...) or textual
via :func:`parse_ltl`, e.g.::

    G (ue_state = UE_REGISTERED_INIT & auth_accepted = 1
       -> received_sqn > last_accepted_sqn)

Formulas are converted to negation normal form before Büchi translation
(:mod:`repro.mc.buchi`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Set

from .expr import Expr, ExprError, parse_expr


class LTLError(Exception):
    """Raised for malformed temporal formulas."""


class Formula:
    """Base class of LTL formula nodes; immutable and hashable."""

    def negate(self) -> "Formula":
        """Logical negation, pushed one level (used for NNF)."""
        raise NotImplementedError

    def atoms(self) -> Set[Expr]:
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(Formula):
    """A state predicate (an :class:`repro.mc.expr.Expr`)."""

    expr: Expr
    negated: bool = False

    def evaluate(self, state) -> bool:
        value = self.expr.evaluate(state)
        return (not value) if self.negated else value

    def compile(self):
        """Fast closure form (see :meth:`repro.mc.expr.Expr.compile`)."""
        fn = self.expr.compile()
        if self.negated:
            return lambda state: not fn(state)
        return fn

    def negate(self) -> "Formula":
        return Atom(self.expr, not self.negated)

    def atoms(self) -> Set[Expr]:
        return {self.expr}

    def __str__(self) -> str:
        return f"!({self.expr})" if self.negated else str(self.expr)


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool

    def negate(self) -> "Formula":
        return BoolConst(not self.value)

    def atoms(self) -> Set[Expr]:
        return set()

    def __str__(self) -> str:
        return "true" if self.value else "false"


LTL_TRUE = BoolConst(True)
LTL_FALSE = BoolConst(False)


@dataclass(frozen=True)
class BinOp(Formula):
    """Binary node: ``and``, ``or``, ``U`` (until), ``R`` (release)."""

    op: str
    left: Formula
    right: Formula

    _DUAL = {"and": "or", "or": "and", "U": "R", "R": "U"}

    def __post_init__(self):
        if self.op not in self._DUAL:
            raise LTLError(f"unknown binary operator {self.op!r}")

    def negate(self) -> "Formula":
        return BinOp(self._DUAL[self.op], self.left.negate(),
                     self.right.negate())

    def atoms(self) -> Set[Expr]:
        return self.left.atoms() | self.right.atoms()

    def __str__(self) -> str:
        symbol = {"and": "&", "or": "|", "U": "U", "R": "R"}[self.op]
        return f"({self.left} {symbol} {self.right})"


@dataclass(frozen=True)
class UnOp(Formula):
    """Unary node: ``X`` (next) — G/F are encoded via U/R at construction."""

    op: str
    operand: Formula

    def __post_init__(self):
        if self.op != "X":
            raise LTLError(f"unknown unary operator {self.op!r}")

    def negate(self) -> "Formula":
        return UnOp("X", self.operand.negate())

    def atoms(self) -> Set[Expr]:
        return self.operand.atoms()

    def __str__(self) -> str:
        return f"X ({self.operand})"


# ---------------------------------------------------------------------------
# Constructors (already in negation normal form by construction)
# ---------------------------------------------------------------------------
def atom(expr_or_text, variables: Iterable[str] = ()) -> Atom:
    """Build an atom from an :class:`Expr` or from guard-syntax text."""
    if isinstance(expr_or_text, str):
        return Atom(parse_expr(expr_or_text, variables))
    if isinstance(expr_or_text, Expr):
        return Atom(expr_or_text)
    raise LTLError(f"cannot build atom from {expr_or_text!r}")


def Not_(formula: Formula) -> Formula:  # noqa: N802 - mirrors LTL syntax
    return formula.negate()


def And_(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return BinOp("and", left, right)


def Or_(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return BinOp("or", left, right)


def Implies(left: Formula, right: Formula) -> Formula:
    return BinOp("or", left.negate(), right)


def X(formula: Formula) -> Formula:  # noqa: N802
    return UnOp("X", formula)


def U(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return BinOp("U", left, right)


def R(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return BinOp("R", left, right)


def F(formula: Formula) -> Formula:  # noqa: N802
    """Eventually: ``F p  ==  true U p``."""
    return BinOp("U", LTL_TRUE, formula)


def G(formula: Formula) -> Formula:  # noqa: N802
    """Globally: ``G p  ==  false R p``."""
    return BinOp("R", LTL_FALSE, formula)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
_TEMPORAL_TOKEN_RE = re.compile(
    r"\s*(?:(?P<cmp>!=|<=|>=)|(?P<op><->|->|U\b|R\b|[()&|!])"
    r"|(?P<unary>[GFX])\b|(?P<rest>[^()&|!\s]+))")


class _LTLParser:
    """Parser for the textual LTL syntax.

    Maximal non-operator runs are handed to the guard parser, so atoms may
    contain comparisons without extra quoting.
    """

    def __init__(self, text: str, variables: Set[str]):
        self.tokens = self._tokenize(text)
        self.position = 0
        self.variables = variables

    @staticmethod
    def _tokenize(text: str):
        tokens = []
        pos = 0
        while pos < len(text):
            match = _TEMPORAL_TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                if text[pos:].strip():
                    raise LTLError(f"cannot tokenize {text[pos:]!r}")
                break
            pos = match.end()
            if match.group("cmp"):
                # comparison operators belong to atoms, not the LTL layer
                tokens.append(("word", match.group("cmp")))
            elif match.group("op"):
                tokens.append(("op", match.group("op").strip()))
            elif match.group("unary"):
                tokens.append(("unary", match.group("unary")))
            else:
                tokens.append(("word", match.group("rest")))
        return tokens

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def advance(self):
        token = self.peek()
        self.position += 1
        return token

    def parse(self) -> Formula:
        formula = self.parse_implies()
        if self.position != len(self.tokens):
            raise LTLError(f"trailing tokens: {self.tokens[self.position:]}")
        return formula

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        kind, value = self.peek()
        if (kind, value) == ("op", "->"):
            self.advance()
            return Implies(left, self.parse_implies())
        if (kind, value) == ("op", "<->"):
            self.advance()
            right = self.parse_implies()
            return Or_(And_(left, right),
                       And_(left.negate(), right.negate()))
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() == ("op", "|"):
            self.advance()
            left = Or_(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_until()
        while self.peek() == ("op", "&"):
            self.advance()
            left = And_(left, self.parse_until())
        return left

    def parse_until(self) -> Formula:
        left = self.parse_unary()
        while True:
            kind, value = self.peek()
            if (kind, value) == ("op", "U"):
                self.advance()
                left = U(left, self.parse_unary())
            elif (kind, value) == ("op", "R"):
                self.advance()
                left = R(left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Formula:
        kind, value = self.peek()
        if kind == "unary":
            self.advance()
            operand = self.parse_unary()
            return {"G": G, "F": F, "X": X}[value](operand)
        if (kind, value) == ("op", "!"):
            self.advance()
            return self.parse_unary().negate()
        if (kind, value) == ("op", "("):
            self.advance()
            inner = self.parse_implies()
            if self.advance() != ("op", ")"):
                raise LTLError("unbalanced parenthesis")
            return inner
        return self.parse_atom_run()

    def parse_atom_run(self) -> Formula:
        """Consume a run of words/comparison operators as one guard atom."""
        pieces = []
        while True:
            kind, value = self.peek()
            if kind == "word":
                pieces.append(value)
                self.advance()
            elif kind == "op" and value == "(" and pieces:
                break
            else:
                break
        if not pieces:
            raise LTLError(f"expected atom, got {self.peek()!r}")
        text = " ".join(pieces)
        if text in ("true", "TRUE"):
            return LTL_TRUE
        if text in ("false", "FALSE"):
            return LTL_FALSE
        try:
            return Atom(parse_expr(text, self.variables))
        except ExprError as exc:
            raise LTLError(f"bad atom {text!r}: {exc}") from exc


def parse_ltl(text: str, variables: Iterable[str] = ()) -> Formula:
    """Parse textual LTL (atoms in the guard syntax) into a formula."""
    return _LTLParser(text, set(variables)).parse()


def closure_size(formula: Formula) -> int:
    """Number of distinct subformulas — a cheap complexity proxy for RQ3."""
    seen: Set[Formula] = set()

    def walk(node: Formula):
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnOp):
            walk(node.operand)

    walk(formula)
    return len(seen)
