"""The supported model-checking facade: one door into :mod:`repro.mc`.

Callers used to reach around the package — ``check_ltl`` here,
``check_invariant`` there, ``parse_ltl`` + ``to_smv`` by hand in the
CLI.  :class:`ModelChecker` collapses those entry points:

    from repro.mc import CheckRequest, ModelChecker

    checker = ModelChecker()
    result = checker.check(model, CheckRequest(
        formula="G (ue_state != UE_NULL)", name="SEC-xx"))

A checker owns the (optional) persistent
:class:`~repro.mc.cache.McVerdictCache`: when one is attached, every
check is first looked up under ``(model fingerprint, normalised formula,
threat digest)`` and a hit returns the stored verdict — counterexample
included — without touching the state space.  Strategy selection
(``on_the_fly`` default, ``materialised`` reference) lives here too, so
the engines in :mod:`repro.mc.checker` stay private.

:class:`CheckRequest` and the returned
:class:`~repro.mc.counterexample.CheckResult` both carry
``schema_version``-stamped ``to_dict``/``from_dict`` wire forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .. import schema
from .buchi import normalised_key
from .cache import McVerdictCache, verdict_digest
from .checker import (STRATEGY_MATERIALISED, STRATEGY_ON_THE_FLY,
                      CheckerError, _check_formula)
from .counterexample import CheckResult
from .expr import Expr
from .ltl import Formula, parse_ltl
from .model import Model

__all__ = ["CheckRequest", "ModelChecker"]


@dataclass
class CheckRequest:
    """One model-checking question, in declarative form.

    ``formula`` may be LTL source text (parsed against the target
    model's vocabulary at check time) or an already-built
    :class:`~repro.mc.ltl.Formula`.  ``threat_digest`` is an opaque
    component of the persistent-cache key — the CEGAR loop passes the
    digest of the current (possibly refined) threat configuration so
    distinct refinement stages cache independently.  ``strategy``
    overrides the checker's engine for this request only.
    """

    formula: Union[str, Formula]
    name: str = "property"
    threat_digest: str = ""
    use_cache: bool = True
    strategy: Optional[str] = None

    def resolved(self, model: Model) -> Formula:
        """The formula, parsed against ``model``'s vocabulary if textual."""
        if isinstance(self.formula, Formula):
            return self.formula
        return parse_ltl(self.formula, model.variable_names)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Schema-stamped wire form; formulas serialise to their text."""
        return schema.stamp({
            "formula": (self.formula if isinstance(self.formula, str)
                        else str(self.formula)),
            "name": self.name,
            "threat_digest": self.threat_digest,
            "use_cache": self.use_cache,
            "strategy": self.strategy,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "CheckRequest":
        schema.check(payload, "CheckRequest")
        return cls(
            formula=payload["formula"],
            name=payload.get("name", "property"),
            threat_digest=payload.get("threat_digest", ""),
            use_cache=payload.get("use_cache", True),
            strategy=payload.get("strategy"),
        )


class ModelChecker:
    """The one supported verification entry point.

    Thread-safe and cheap to construct; attach a
    :class:`~repro.mc.cache.McVerdictCache` to make verdicts persistent
    across runs (the CEGAR context does this when the analysis config
    sets ``mc_cache_dir``).
    """

    def __init__(self, cache: Optional[McVerdictCache] = None,
                 strategy: str = STRATEGY_ON_THE_FLY):
        if strategy not in (STRATEGY_ON_THE_FLY, STRATEGY_MATERIALISED):
            raise CheckerError(f"unknown checking strategy {strategy!r}")
        self.cache = cache
        self.strategy = strategy

    # ------------------------------------------------------------------
    def check(self, model: Model, request: CheckRequest) -> CheckResult:
        """Answer ``model |= request.formula``.

        With a cache attached (and ``request.use_cache``), a stored
        verdict for the same ``(model content, normalised formula,
        threat digest)`` is returned without any exploration —
        ``result.from_cache`` marks it, and no ``mc.*`` span counters
        are touched, which is what lets a fully warm re-analysis assert
        ``mc.checks == 0``.
        """
        formula = request.resolved(model)
        digest: Optional[str] = None
        if self.cache is not None and request.use_cache:
            digest = verdict_digest(model.fingerprint(),
                                    normalised_key(formula),
                                    request.threat_digest)
            cached = self.cache.get(digest)
            if cached is not None:
                cached.property_name = request.name
                return cached
        result = _check_formula(model, formula, request.name,
                                strategy=request.strategy or self.strategy)
        if digest is not None:
            self.cache.put(digest, result, key={
                "model_fingerprint": model.fingerprint(),
                "formula": normalised_key(formula),
                "threat_digest": request.threat_digest,
            })
        return result

    def check_formula(self, model: Model,
                      formula: Union[str, Formula],
                      name: str = "property") -> CheckResult:
        """Convenience wrapper: check with default request settings."""
        return self.check(model, CheckRequest(formula=formula, name=name))

    def check_invariant(self, model: Model, invariant: Expr,
                        name: str = "invariant") -> CheckResult:
        """Check ``G invariant`` for a propositional ``invariant``."""
        from .checker import _check_invariant
        return _check_invariant(model, invariant, name)

    # ------------------------------------------------------------------
    def export_smv(self, model: Model, request: CheckRequest) -> str:
        """NuXmv-syntax export of ``model`` plus the request's property."""
        from .smv import to_smv
        return to_smv(model, [(request.name, request.resolved(model))])
