"""Boolean expressions over finite-domain state variables.

The model checker (our NuXmv substitute) represents a system state as a
mapping from variable names to values drawn from small finite domains
(enum labels, bounded integers, booleans).  Guards of transition commands
and atomic propositions of LTL formulas are expressions from this module.

A small concrete syntax is provided so properties read like the paper's,
e.g.::

    ue_state = UE_REGISTERED & mac_valid = 1
    sqn_accepted -> received_sqn > last_sqn

Grammar (precedence low to high): ``<->``, ``->``, ``|``, ``&``, ``!``,
comparison (``= != < <= > >=``), atoms (identifiers, integers, ``true``,
``false``, parenthesised expressions).  Identifiers on the right-hand side
of comparisons are treated as enum literals unless they are declared
variables — the parser takes the variable set to disambiguate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Set, Tuple, Union

Value = Union[str, int, bool]
State = Mapping[str, Value]
CompiledExpr = Callable[[State], bool]


class ExprError(Exception):
    """Raised on malformed expressions or evaluation against bad states."""


class Expr:
    """Base class for expression nodes. Nodes are immutable and hashable."""

    def evaluate(self, state: State) -> bool:
        raise NotImplementedError

    def compile(self) -> CompiledExpr:
        """A fast closure equivalent to :meth:`evaluate`.

        Compiled expressions are the model checker's hot path: they skip
        the per-node dispatch and diagnostics of :meth:`evaluate` and
        assume a well-formed state (every referenced variable present,
        domains comparable) — which the checker guarantees via
        :meth:`repro.mc.model.Model.validate_expression`.  Semantics on
        well-formed states are identical to :meth:`evaluate`.
        """
        return self.evaluate

    def variables(self) -> Set[str]:
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    def implies(self, other: "Expr") -> "Expr":
        return Or(Not(self), other)


@dataclass(frozen=True)
class Const(Expr):
    """A boolean constant."""

    value: bool

    def evaluate(self, state: State) -> bool:
        return self.value

    def compile(self) -> CompiledExpr:
        value = self.value
        return lambda state: value

    def variables(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Expr):
    """``variable <op> literal`` or ``variable <op> variable``."""

    left: str
    op: str
    right: Value
    right_is_var: bool = False

    def __post_init__(self):
        if self.op not in _OPS:
            raise ExprError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, state: State) -> bool:
        if self.left not in state:
            raise ExprError(f"variable {self.left!r} absent from state")
        left_value = state[self.left]
        if self.right_is_var:
            if self.right not in state:
                raise ExprError(f"variable {self.right!r} absent from state")
            right_value = state[self.right]
        else:
            right_value = self.right
        try:
            return _OPS[self.op](left_value, right_value)
        except TypeError as exc:
            raise ExprError(
                f"incomparable values {left_value!r} {self.op} "
                f"{right_value!r}") from exc

    def compile(self) -> CompiledExpr:
        left, right, op = self.left, self.right, _OPS[self.op]
        if self.right_is_var:
            return lambda state: op(state[left], state[right])
        if self.op == "=":
            return lambda state: state[left] == right
        if self.op == "!=":
            return lambda state: state[left] != right
        return lambda state: op(state[left], right)

    def variables(self) -> Set[str]:
        names = {self.left}
        if self.right_is_var:
            names.add(str(self.right))
        return names

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, state: State) -> bool:
        return not self.operand.evaluate(state)

    def compile(self) -> CompiledExpr:
        operand = self.operand.compile()
        return lambda state: not operand(state)

    def variables(self) -> Set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!({self.operand})"


class _NaryExpr(Expr):
    """Shared behaviour of conjunction/disjunction."""

    symbol = "?"
    operands: Tuple[Expr, ...]

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for operand in self.operands:
            names |= operand.variables()
        return names

    def __str__(self) -> str:
        return "(" + f" {self.symbol} ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class And(_NaryExpr):
    operands: Tuple[Expr, ...]
    symbol = "&"

    def __init__(self, *operands: Expr):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, state: State) -> bool:
        return all(operand.evaluate(state) for operand in self.operands)

    def compile(self) -> CompiledExpr:
        compiled = tuple(operand.compile() for operand in self.operands)
        if len(compiled) == 2:
            first, second = compiled
            return lambda state: first(state) and second(state)
        return lambda state: all(fn(state) for fn in compiled)


@dataclass(frozen=True)
class Or(_NaryExpr):
    operands: Tuple[Expr, ...]
    symbol = "|"

    def __init__(self, *operands: Expr):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, state: State) -> bool:
        return any(operand.evaluate(state) for operand in self.operands)

    def compile(self) -> CompiledExpr:
        compiled = tuple(operand.compile() for operand in self.operands)
        if len(compiled) == 2:
            first, second = compiled
            return lambda state: first(state) or second(state)
        return lambda state: any(fn(state) for fn in compiled)


def var_equals(name: str, value: Value) -> Compare:
    """Shorthand used throughout the property catalog."""
    return Compare(name, "=", value)


def conjoin(exprs: Iterable[Expr]) -> Expr:
    items = [e for e in exprs if e is not TRUE]
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<op><->|->|<=|>=|!=|[()&|!=<>])|(?P<num>-?\d+)"
    r"|(?P<name>[A-Za-z_][\w.]*))")


def _tokenize(text: str):
    pos = 0
    tokens = []
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            if text[pos:].strip():
                raise ExprError(f"cannot tokenize {text[pos:]!r}")
            break
        pos = match.end()
        if match.group("op"):
            tokens.append(("op", match.group("op")))
        elif match.group("num") is not None:
            tokens.append(("num", int(match.group("num"))))
        else:
            tokens.append(("name", match.group("name")))
    return tokens


class _Parser:
    """Recursive-descent parser for the guard concrete syntax."""

    def __init__(self, tokens, variables: Set[str]):
        self.tokens = tokens
        self.position = 0
        self.variables = variables

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def advance(self):
        token = self.peek()
        self.position += 1
        return token

    def expect(self, op: str):
        kind, value = self.advance()
        if kind != "op" or value != op:
            raise ExprError(f"expected {op!r}, got {value!r}")

    def parse(self) -> Expr:
        expr = self.parse_iff()
        if self.position != len(self.tokens):
            raise ExprError(f"trailing tokens: {self.tokens[self.position:]}")
        return expr

    def parse_iff(self) -> Expr:
        left = self.parse_implies()
        while self.peek() == ("op", "<->"):
            self.advance()
            right = self.parse_implies()
            left = Or(And(left, right), And(Not(left), Not(right)))
        return left

    def parse_implies(self) -> Expr:
        left = self.parse_or()
        if self.peek() == ("op", "->"):
            self.advance()
            right = self.parse_implies()
            return left.implies(right)
        return left

    def parse_or(self) -> Expr:
        operands = [self.parse_and()]
        while self.peek() == ("op", "|"):
            self.advance()
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def parse_and(self) -> Expr:
        operands = [self.parse_not()]
        while self.peek() == ("op", "&"):
            self.advance()
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(*operands)

    def parse_not(self) -> Expr:
        if self.peek() == ("op", "!"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        kind, value = self.advance()
        if kind == "op" and value == "(":
            inner = self.parse_iff()
            self.expect(")")
            return inner
        if kind == "name" and value in ("true", "TRUE"):
            return TRUE
        if kind == "name" and value in ("false", "FALSE"):
            return FALSE
        if kind == "name":
            return self.parse_comparison(value)
        raise ExprError(f"unexpected token {value!r}")

    def parse_comparison(self, left: str) -> Expr:
        kind, op = self.peek()
        if kind == "op" and op in _OPS:
            self.advance()
            rkind, rvalue = self.advance()
            if rkind == "num":
                return Compare(left, op, rvalue)
            if rkind == "name":
                is_var = rvalue in self.variables
                return Compare(left, op, rvalue, right_is_var=is_var)
            raise ExprError(f"bad comparison right-hand side {rvalue!r}")
        # A bare identifier is a boolean variable tested for truth.
        return Compare(left, "=", True)


def parse_expr(text: str, variables: Iterable[str] = ()) -> Expr:
    """Parse the concrete guard syntax into an :class:`Expr`.

    ``variables`` lists the declared state variables so that identifiers on
    a comparison's right-hand side can be classified as variable references
    rather than enum literals.
    """
    return _Parser(_tokenize(text), set(variables)).parse()
