"""LTL to Büchi automaton translation (Gerth–Peled–Vardi–Wolper tableau).

The explicit-state checker verifies ``M |= phi`` by translating ``!phi`` to
a Büchi automaton, building the synchronous product with the model's state
graph, and searching for an accepting lasso (nested DFS).  This module
implements the classic GPVW on-the-fly tableau construction followed by
counter-based degeneralisation, so the checker only ever deals with a plain
(single acceptance set) Büchi automaton.

The construction operates on formulas in negation normal form, which the
constructors in :mod:`repro.mc.ltl` produce by design.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .ltl import Atom, BinOp, BoolConst, Formula, UnOp


@dataclass
class _Node:
    """A tableau node in the GPVW construction."""

    name: int
    incoming: Set[int]
    new: Set[Formula]
    old: Set[Formula]
    next: Set[Formula]


_INIT = -1  # pseudo-initial predecessor marker


def _contradicts(formula: Formula, old: Set[Formula]) -> bool:
    if isinstance(formula, BoolConst):
        return not formula.value
    if isinstance(formula, Atom):
        return Atom(formula.expr, not formula.negated) in old
    return False


def _expand(node: _Node, nodes: List[_Node], counter) -> None:
    """Recursive tableau expansion (Gerth et al., Fig. 2)."""
    if not node.new:
        for existing in nodes:
            if existing.old == node.old and existing.next == node.next:
                existing.incoming |= node.incoming
                return
        nodes.append(node)
        successor = _Node(name=next(counter), incoming={node.name},
                          new=set(node.next), old=set(), next=set())
        _expand(successor, nodes, counter)
        return

    formula = node.new.pop()
    if isinstance(formula, (Atom, BoolConst)):
        if _contradicts(formula, node.old):
            return  # inconsistent node: discard
        if not (isinstance(formula, BoolConst) and formula.value):
            node.old.add(formula)
        _expand(node, nodes, counter)
        return

    if isinstance(formula, UnOp):  # X g
        node.old.add(formula)
        node.next.add(formula.operand)
        _expand(node, nodes, counter)
        return

    assert isinstance(formula, BinOp)
    if formula.op == "and":
        node.old.add(formula)
        for part in (formula.left, formula.right):
            if part not in node.old:
                node.new.add(part)
        _expand(node, nodes, counter)
        return

    # or / U / R all split the node in two.
    left_new: Set[Formula]
    left_next: Set[Formula] = set()
    right_new: Set[Formula]
    if formula.op == "or":
        left_new, right_new = {formula.left}, {formula.right}
    elif formula.op == "U":
        left_new, left_next = {formula.left}, {formula}
        right_new = {formula.right}
    else:  # R: g1 R g2  ==  g2 & (g1 | X(g1 R g2))
        left_new, left_next = {formula.right}, {formula}
        right_new = {formula.left, formula.right}

    base_old = node.old | {formula}
    first = _Node(name=next(counter), incoming=set(node.incoming),
                  new=node.new | (left_new - base_old),
                  old=set(base_old), next=node.next | left_next)
    second = _Node(name=next(counter), incoming=set(node.incoming),
                   new=node.new | (right_new - base_old),
                   old=set(base_old), next=set(node.next))
    _expand(first, nodes, counter)
    _expand(second, nodes, counter)


def _until_subformulas(formula: Formula) -> List[BinOp]:
    found: List[BinOp] = []
    seen: Set[Formula] = set()

    def walk(node: Formula):
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, BinOp):
            if node.op == "U":
                found.append(node)
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnOp):
            walk(node.operand)

    walk(formula)
    return found


@dataclass
class BuchiAutomaton:
    """A (degeneralised) Büchi automaton over state predicates.

    ``labels[q]`` is the set of literals (positive/negated atoms) that the
    model state must satisfy when the automaton *enters* ``q``.
    """

    initial: FrozenSet[int]
    states: FrozenSet[int]
    transitions: Dict[int, Tuple[int, ...]]
    labels: Dict[int, Tuple[Atom, ...]]
    accepting: FrozenSet[int]

    def state_satisfies(self, buchi_state: int, model_state) -> bool:
        """Does ``model_state`` satisfy the entry label of ``buchi_state``?"""
        try:
            checks = self._compiled_labels
        except AttributeError:
            checks = self._compiled_labels = {
                state: tuple(literal.compile() for literal in literals)
                for state, literals in self.labels.items()}
        return all(check(model_state) for check in checks[buchi_state])

    def successors(self, buchi_state: int) -> Tuple[int, ...]:
        return self.transitions.get(buchi_state, ())

    def size(self) -> Tuple[int, int]:
        edge_count = sum(len(v) for v in self.transitions.values())
        return len(self.states), edge_count


def _degeneralize(
    node_ids: List[int],
    incoming: Dict[int, Set[int]],
    labels: Dict[int, Tuple[Atom, ...]],
    acceptance_sets: List[Set[int]],
    initial_nodes: Set[int],
) -> BuchiAutomaton:
    """Counter construction turning generalised acceptance into plain Büchi."""
    if not acceptance_sets:
        acceptance_sets = [set(node_ids)]
    set_count = len(acceptance_sets)

    def advance(counter_value: int, node: int) -> int:
        value = counter_value
        while value < set_count and node in acceptance_sets[value]:
            value += 1
        return value % (set_count + 1) if value > set_count else value

    # Product states are (node, counter); counter advances through the
    # acceptance sets and wraps after visiting one state from each.
    state_ids: Dict[Tuple[int, int], int] = {}
    transitions: Dict[int, List[int]] = {}
    product_labels: Dict[int, Tuple[Atom, ...]] = {}
    accepting: Set[int] = set()
    initial: Set[int] = set()

    def intern(node: int, counter_value: int) -> int:
        key = (node, counter_value)
        if key not in state_ids:
            state_ids[key] = len(state_ids)
            product_labels[state_ids[key]] = labels[node]
        return state_ids[key]

    # successors map from incoming map
    successors: Dict[int, Set[int]] = {n: set() for n in node_ids}
    for node, preds in incoming.items():
        for pred in preds:
            if pred == _INIT:
                continue
            successors.setdefault(pred, set()).add(node)

    worklist: List[Tuple[int, int]] = []
    for node in initial_nodes:
        entry_counter = advance(0, node)
        accepting_entry = entry_counter == set_count
        entry_counter = 0 if accepting_entry else entry_counter
        pid = intern(node, entry_counter)
        if accepting_entry:
            accepting.add(pid)
        initial.add(pid)
        worklist.append((node, entry_counter))

    visited: Set[Tuple[int, int]] = set(
        key for key in state_ids)
    while worklist:
        node, counter_value = worklist.pop()
        pid = state_ids[(node, counter_value)]
        for successor in successors.get(node, ()):  # tableau edges
            next_counter = advance(counter_value, successor)
            wrapped = next_counter == set_count
            next_counter = 0 if wrapped else next_counter
            sid = intern(successor, next_counter)
            if wrapped:
                accepting.add(sid)
            transitions.setdefault(pid, []).append(sid)
            if (successor, next_counter) not in visited:
                visited.add((successor, next_counter))
                worklist.append((successor, next_counter))

    return BuchiAutomaton(
        initial=frozenset(initial),
        states=frozenset(state_ids.values()),
        transitions={k: tuple(sorted(set(v))) for k, v in transitions.items()},
        labels=product_labels,
        accepting=frozenset(accepting),
    )


def ltl_to_buchi(formula: Formula) -> BuchiAutomaton:
    """Translate an NNF LTL formula into a plain Büchi automaton."""
    counter = itertools.count()
    root = _Node(name=next(counter), incoming={_INIT},
                 new={formula}, old=set(), next=set())
    nodes: List[_Node] = []
    _expand(root, nodes, counter)

    node_ids = [node.name for node in nodes]
    incoming = {node.name: set(node.incoming) for node in nodes}
    labels = {
        node.name: tuple(f for f in node.old if isinstance(f, Atom))
        for node in nodes
    }
    initial_nodes = {node.name for node in nodes if _INIT in node.incoming}

    acceptance_sets = []
    for until in _until_subformulas(formula):
        acceptance_sets.append({
            node.name for node in nodes
            if until not in node.old or until.right in node.old
        })
    return _degeneralize(node_ids, incoming, labels, acceptance_sets,
                         initial_nodes)
