"""LTL to Büchi automaton translation (Gerth–Peled–Vardi–Wolper tableau).

The explicit-state checker verifies ``M |= phi`` by translating ``!phi`` to
a Büchi automaton, building the synchronous product with the model's state
graph, and searching for an accepting lasso (nested DFS).  This module
implements the classic GPVW on-the-fly tableau construction followed by
counter-based degeneralisation, so the checker only ever deals with a plain
(single acceptance set) Büchi automaton.

The construction operates on formulas in negation normal form, which the
constructors in :mod:`repro.mc.ltl` produce by design.

Automata are memoised per **normalised** formula: :func:`normalise_ltl`
alpha-renames atoms into dense indices (first-occurrence order) over the
canonical NNF operator core, so the 62 catalog properties — and the
many per-iteration negations the CEGAR loop requests — share one tableau
construction per formula *shape*.  Templates are built over placeholder
atoms and instantiated by binding the concrete atoms back in, which
costs a dictionary copy instead of a tableau expansion.  The cache is
process-wide (and inherited by forked pool workers), mirroring the
extraction-cache pattern; hits/misses are counted in the
:mod:`repro.obs` registry (``mc.buchi_template_*``).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .. import obs
from .expr import Compare, Expr
from .ltl import Atom, BinOp, BoolConst, Formula, UnOp


@dataclass
class _Node:
    """A tableau node in the GPVW construction."""

    name: int
    incoming: Set[int]
    new: Set[Formula]
    old: Set[Formula]
    next: Set[Formula]


_INIT = -1  # pseudo-initial predecessor marker


def _contradicts(formula: Formula, old: Set[Formula]) -> bool:
    if isinstance(formula, BoolConst):
        return not formula.value
    if isinstance(formula, Atom):
        return Atom(formula.expr, not formula.negated) in old
    return False


def _expand(node: _Node, nodes: List[_Node], counter) -> None:
    """Recursive tableau expansion (Gerth et al., Fig. 2)."""
    if not node.new:
        for existing in nodes:
            if existing.old == node.old and existing.next == node.next:
                existing.incoming |= node.incoming
                return
        nodes.append(node)
        successor = _Node(name=next(counter), incoming={node.name},
                          new=set(node.next), old=set(), next=set())
        _expand(successor, nodes, counter)
        return

    formula = node.new.pop()
    if isinstance(formula, (Atom, BoolConst)):
        if _contradicts(formula, node.old):
            return  # inconsistent node: discard
        if not (isinstance(formula, BoolConst) and formula.value):
            node.old.add(formula)
        _expand(node, nodes, counter)
        return

    if isinstance(formula, UnOp):  # X g
        node.old.add(formula)
        node.next.add(formula.operand)
        _expand(node, nodes, counter)
        return

    assert isinstance(formula, BinOp)
    if formula.op == "and":
        node.old.add(formula)
        for part in (formula.left, formula.right):
            if part not in node.old:
                node.new.add(part)
        _expand(node, nodes, counter)
        return

    # or / U / R all split the node in two.
    left_new: Set[Formula]
    left_next: Set[Formula] = set()
    right_new: Set[Formula]
    if formula.op == "or":
        left_new, right_new = {formula.left}, {formula.right}
    elif formula.op == "U":
        left_new, left_next = {formula.left}, {formula}
        right_new = {formula.right}
    else:  # R: g1 R g2  ==  g2 & (g1 | X(g1 R g2))
        left_new, left_next = {formula.right}, {formula}
        right_new = {formula.left, formula.right}

    base_old = node.old | {formula}
    first = _Node(name=next(counter), incoming=set(node.incoming),
                  new=node.new | (left_new - base_old),
                  old=set(base_old), next=node.next | left_next)
    second = _Node(name=next(counter), incoming=set(node.incoming),
                   new=node.new | (right_new - base_old),
                   old=set(base_old), next=set(node.next))
    _expand(first, nodes, counter)
    _expand(second, nodes, counter)


def _until_subformulas(formula: Formula) -> List[BinOp]:
    found: List[BinOp] = []
    seen: Set[Formula] = set()

    def walk(node: Formula):
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, BinOp):
            if node.op == "U":
                found.append(node)
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnOp):
            walk(node.operand)

    walk(formula)
    return found


@dataclass
class BuchiAutomaton:
    """A (degeneralised) Büchi automaton over state predicates.

    ``labels[q]`` is the set of literals (positive/negated atoms) that the
    model state must satisfy when the automaton *enters* ``q``.
    """

    initial: FrozenSet[int]
    states: FrozenSet[int]
    transitions: Dict[int, Tuple[int, ...]]
    labels: Dict[int, Tuple[Atom, ...]]
    accepting: FrozenSet[int]

    def state_satisfies(self, buchi_state: int, model_state) -> bool:
        """Does ``model_state`` satisfy the entry label of ``buchi_state``?"""
        try:
            checks = self._compiled_labels
        except AttributeError:
            checks = self._compiled_labels = {
                state: tuple(literal.compile() for literal in literals)
                for state, literals in self.labels.items()}
        return all(check(model_state) for check in checks[buchi_state])

    def successors(self, buchi_state: int) -> Tuple[int, ...]:
        return self.transitions.get(buchi_state, ())

    def size(self) -> Tuple[int, int]:
        edge_count = sum(len(v) for v in self.transitions.values())
        return len(self.states), edge_count


def _degeneralize(
    node_ids: List[int],
    incoming: Dict[int, Set[int]],
    labels: Dict[int, Tuple[Atom, ...]],
    acceptance_sets: List[Set[int]],
    initial_nodes: Set[int],
) -> BuchiAutomaton:
    """Counter construction turning generalised acceptance into plain Büchi."""
    if not acceptance_sets:
        acceptance_sets = [set(node_ids)]
    set_count = len(acceptance_sets)

    def advance(counter_value: int, node: int) -> int:
        value = counter_value
        while value < set_count and node in acceptance_sets[value]:
            value += 1
        return value % (set_count + 1) if value > set_count else value

    # Product states are (node, counter); counter advances through the
    # acceptance sets and wraps after visiting one state from each.
    state_ids: Dict[Tuple[int, int], int] = {}
    transitions: Dict[int, List[int]] = {}
    product_labels: Dict[int, Tuple[Atom, ...]] = {}
    accepting: Set[int] = set()
    initial: Set[int] = set()

    def intern(node: int, counter_value: int) -> int:
        key = (node, counter_value)
        if key not in state_ids:
            state_ids[key] = len(state_ids)
            product_labels[state_ids[key]] = labels[node]
        return state_ids[key]

    # successors map from incoming map
    successors: Dict[int, Set[int]] = {n: set() for n in node_ids}
    for node, preds in incoming.items():
        for pred in preds:
            if pred == _INIT:
                continue
            successors.setdefault(pred, set()).add(node)

    worklist: List[Tuple[int, int]] = []
    for node in initial_nodes:
        entry_counter = advance(0, node)
        accepting_entry = entry_counter == set_count
        entry_counter = 0 if accepting_entry else entry_counter
        pid = intern(node, entry_counter)
        if accepting_entry:
            accepting.add(pid)
        initial.add(pid)
        worklist.append((node, entry_counter))

    visited: Set[Tuple[int, int]] = set(
        key for key in state_ids)
    while worklist:
        node, counter_value = worklist.pop()
        pid = state_ids[(node, counter_value)]
        for successor in successors.get(node, ()):  # tableau edges
            next_counter = advance(counter_value, successor)
            wrapped = next_counter == set_count
            next_counter = 0 if wrapped else next_counter
            sid = intern(successor, next_counter)
            if wrapped:
                accepting.add(sid)
            transitions.setdefault(pid, []).append(sid)
            if (successor, next_counter) not in visited:
                visited.add((successor, next_counter))
                worklist.append((successor, next_counter))

    return BuchiAutomaton(
        initial=frozenset(initial),
        states=frozenset(state_ids.values()),
        transitions={k: tuple(sorted(set(v))) for k, v in transitions.items()},
        labels=product_labels,
        accepting=frozenset(accepting),
    )


# ---------------------------------------------------------------------------
# Formula normalisation and the process-wide template cache
# ---------------------------------------------------------------------------
Shape = Tuple


def normalise_ltl(formula: Formula) -> Tuple[Shape, Tuple[Expr, ...]]:
    """Canonical ``(shape, atom table)`` decomposition of a formula.

    The *shape* is the formula's NNF operator tree with every atomic
    predicate alpha-renamed to its dense first-occurrence index (negation
    stays in the shape, since NNF literals carry it).  Two formulas have
    equal shapes iff they are alpha-equivalent over their atoms — which
    also covers operator sugar, because ``F/G/Implies`` already
    canonicalise to ``U/R/or`` at construction time.  The atom table
    lists the concrete predicates in index order, so
    ``instantiate(shape, atoms)`` round-trips.
    """
    atoms: Dict[Expr, int] = {}

    def walk(node: Formula) -> Shape:
        if isinstance(node, BoolConst):
            return ("const", node.value)
        if isinstance(node, Atom):
            index = atoms.setdefault(node.expr, len(atoms))
            return ("atom", index, node.negated)
        if isinstance(node, UnOp):
            return ("X", walk(node.operand))
        assert isinstance(node, BinOp)
        return (node.op, walk(node.left), walk(node.right))

    shape = walk(formula)
    return shape, tuple(atoms)


def normalised_key(formula: Formula) -> str:
    """Stable digest of a formula's full canonical identity.

    Combines the alpha-renamed shape with the concrete atom spellings,
    so alpha-*equivalent but semantically different* formulas get
    distinct keys — the right identity for persistent verdict caching
    and duplicate-formula lint checks, where only the shape-level
    :func:`normalise_ltl` sharing would be unsound.
    """
    shape, atoms = normalise_ltl(formula)
    digest = hashlib.sha256(repr(shape).encode())
    for expr in atoms:
        digest.update(b"\x00")
        digest.update(str(expr).encode())
    return digest.hexdigest()


def _formula_from_shape(shape: Shape,
                        atoms: Sequence[Expr]) -> Formula:
    kind = shape[0]
    if kind == "const":
        return BoolConst(shape[1])
    if kind == "atom":
        return Atom(atoms[shape[1]], shape[2])
    if kind == "X":
        return UnOp("X", _formula_from_shape(shape[1], atoms))
    return BinOp(kind, _formula_from_shape(shape[1], atoms),
                 _formula_from_shape(shape[2], atoms))


@dataclass(frozen=True)
class _BuchiTemplate:
    """An automaton abstracted over its atoms: labels are (index, negated).

    ``instantiate`` binds concrete atoms back in; the transition
    structure is shared between instantiations (it is never mutated),
    only the label dict is rebuilt, and each returned automaton compiles
    its own literal closures lazily.
    """

    initial: FrozenSet[int]
    states: FrozenSet[int]
    transitions: Dict[int, Tuple[int, ...]]
    labels: Dict[int, Tuple[Tuple[int, bool], ...]]
    accepting: FrozenSet[int]

    def instantiate(self, atoms: Sequence[Expr]) -> BuchiAutomaton:
        return BuchiAutomaton(
            initial=self.initial,
            states=self.states,
            transitions=self.transitions,
            labels={state: tuple(Atom(atoms[index], negated)
                                 for index, negated in literals)
                    for state, literals in self.labels.items()},
            accepting=self.accepting,
        )


_TEMPLATE_LOCK = threading.Lock()
_TEMPLATE_CACHE: Dict[Shape, _BuchiTemplate] = {}
_TEMPLATE_HITS = 0
_TEMPLATE_MISSES = 0


def _build_template(shape: Shape, arity: int) -> _BuchiTemplate:
    # Build over fixed placeholder atoms rather than whichever concrete
    # formula arrived first: the tableau's set-iteration order depends on
    # atom hashes, so placeholders make the template — and therefore
    # every instantiation's exploration order — independent of which
    # alpha-equivalent formula populated the cache entry.
    placeholders = tuple(Compare(f"__a{index}", "=", 1)
                         for index in range(arity))
    automaton = _ltl_to_buchi_uncached(_formula_from_shape(shape,
                                                           placeholders))
    index_of = {expr: index for index, expr in enumerate(placeholders)}
    return _BuchiTemplate(
        initial=automaton.initial,
        states=automaton.states,
        transitions=automaton.transitions,
        labels={state: tuple((index_of[literal.expr], literal.negated)
                             for literal in literals)
                for state, literals in automaton.labels.items()},
        accepting=automaton.accepting,
    )


def buchi_cache_stats() -> Dict[str, int]:
    """Template-cache warmth of this process (for tests/telemetry)."""
    with _TEMPLATE_LOCK:
        return {"entries": len(_TEMPLATE_CACHE),
                "hits": _TEMPLATE_HITS,
                "misses": _TEMPLATE_MISSES}


def clear_buchi_cache() -> None:
    """Drop all memoised templates and counters (test isolation hook)."""
    global _TEMPLATE_HITS, _TEMPLATE_MISSES
    with _TEMPLATE_LOCK:
        _TEMPLATE_CACHE.clear()
        _TEMPLATE_HITS = 0
        _TEMPLATE_MISSES = 0


def ltl_to_buchi(formula: Formula) -> BuchiAutomaton:
    """Translate an NNF LTL formula into a plain Büchi automaton.

    Memoised per normalised formula shape (see :func:`normalise_ltl`):
    on a hit, the cached template is instantiated with this formula's
    atoms instead of re-running the tableau construction.
    """
    global _TEMPLATE_HITS, _TEMPLATE_MISSES
    shape, atoms = normalise_ltl(formula)
    with _TEMPLATE_LOCK:
        template = _TEMPLATE_CACHE.get(shape)
    if template is None:
        template = _build_template(shape, len(atoms))
        with _TEMPLATE_LOCK:
            template = _TEMPLATE_CACHE.setdefault(shape, template)
            _TEMPLATE_MISSES += 1
        obs.count("mc.buchi_template_misses")
    else:
        with _TEMPLATE_LOCK:
            _TEMPLATE_HITS += 1
        obs.count("mc.buchi_template_hits")
    return template.instantiate(atoms)


def _ltl_to_buchi_uncached(formula: Formula) -> BuchiAutomaton:
    """The raw GPVW tableau + degeneralisation pipeline (uncached)."""
    counter = itertools.count()
    root = _Node(name=next(counter), incoming={_INIT},
                 new={formula}, old=set(), next=set())
    nodes: List[_Node] = []
    _expand(root, nodes, counter)

    node_ids = [node.name for node in nodes]
    incoming = {node.name: set(node.incoming) for node in nodes}
    labels = {
        node.name: tuple(f for f in node.old if isinstance(f, Atom))
        for node in nodes
    }
    initial_nodes = {node.name for node in nodes if _INIT in node.incoming}

    acceptance_sets = []
    for until in _until_subformulas(formula):
        acceptance_sets.append({
            node.name for node in nodes
            if until not in node.old or until.right in node.old
        })
    return _degeneralize(node_ids, incoming, labels, acceptance_sets,
                         initial_nodes)
