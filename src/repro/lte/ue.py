"""UE-side NAS layer implementation.

A complete, event-driven, stateful NAS state machine for the UE covering
every procedure the paper exercises: attach, identity, EPS-AKA
authentication (with the TS 33.102 Annex C SQN array), security mode
control, GUTI reallocation, tracking area update, paging/service request,
detach, and the reject family.

Three deliberate levers reproduce the paper's implementation landscape:

- The *standards-level* behaviours (P1-P3) are present in every variant
  because the standard mandates them: the SQN array accepts out-of-order
  values (no freshness limit L by default), and there is no detection of
  surreptitiously dropped packets.
- :class:`UePolicy` flags seed the *implementation* bugs of Table I
  (I1-I6) so the ``srsue_like`` and ``oai_like`` variants deviate exactly
  where the paper reports srsUE and OAI deviating.
- Handler methods are synthesised with each implementation's own naming
  signature (``recv_``/``send_``, ``parse_``/``send_``,
  ``emm_recv_``/``emm_send_``) so the runtime instrumentation observes
  realistic, implementation-specific function signatures — the mapping
  problem ProChecker's extractor solves.

The attributes in :data:`UeNas.STATE_VARIABLES` are the "global state
variables" the instrumentor dumps at function entry/exit; handler locals
deliberately use the standard condition-variable names (``mac_valid``,
``sqn_fresh``, ``replay_ok``, ...) that the extractor lifts into FSM guard
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from . import constants as c
from .channel import RadioLink
from .identifiers import Guti, Subscriber
from .messages import MessageError, NasMessage
from .security import (DIR_DOWNLINK, DIR_UPLINK, SecurityContext,
                       derive_kasme, f1_mac, f2_res)
from .sqn import Sqn, SqnError, UsimSqnArray
from .timers import SimClock


@dataclass
class UePolicy:
    """Behavioural switches that seed the Table I implementation issues.

    The defaults are the *compliant* behaviour (as compliant as the
    standard allows — the standards-level flaws cannot be switched off
    without deviating from TS 33.102/24.301, which is the paper's point).
    """

    #: TS 33.102 Annex C 2.2 optional limit L; ``None`` (operator default)
    #: leaves the stale-SQN window open (P1/P2 root cause).
    freshness_limit: Optional[int] = None
    #: I3 (srsUE): accept an authentication_request whose SQN equals the
    #: stored value, resetting the counter.
    accept_equal_sqn: bool = False
    #: I1 (srsUE): no downlink NAS COUNT check at all — any replayed
    #: protected message is accepted and the counter reset to its COUNT.
    enforce_dl_count: bool = True
    #: I1 (OAI): the last protected message is accepted again on replay.
    replay_accept_last_only: bool = False
    #: I2 (OAI): accept plain-header (0x0) messages after the security
    #: context is established.
    accept_plain_after_ctx: bool = False
    #: I4 (srsUE): keep the security context after a reject/release, so a
    #: later attach skips authentication and SMC entirely.
    require_auth_after_reject: bool = True
    #: I5 (OAI): answer any plaintext identity_request with the IMSI, even
    #: after the security context is established.
    respond_identity_always: bool = False


@dataclass
class UeEvent:
    """Application-visible event record (what a modem log would show)."""

    kind: str
    detail: str = ""


class UeNas:
    """Base UE NAS implementation (the 'reference'/closed-source stand-in).

    Subclasses define the handler-name signature via ``RECV_PREFIX`` and
    ``SEND_PREFIX``; concrete named handlers are synthesised at class
    creation by :func:`synthesize_handlers` so the runtime tracer observes
    the implementation's own function names.
    """

    #: canonical signature style of the closed-source reference codebase
    RECV_PREFIX = "recv_"
    SEND_PREFIX = "send_"

    #: the "global variables" the source instrumentor dumps (Section IV-A)
    STATE_VARIABLES = (
        "emm_state", "has_security_ctx", "guti_assigned", "ul_count",
        "dl_count", "attach_attempts",
    )

    def __init__(self, subscriber: Subscriber, link: RadioLink,
                 clock: Optional[SimClock] = None,
                 policy: Optional[UePolicy] = None,
                 t3410_duration: float = 15.0):
        self.subscriber = subscriber
        self.link = link
        self.clock = clock or SimClock()
        self.policy = policy or UePolicy()
        self.t3410_duration = t3410_duration

        # -- protocol globals (instrumented) -----------------------------
        self.emm_state = c.EMM_DEREGISTERED
        self.has_security_ctx = 0
        self.guti_assigned = 0
        self.ul_count = 0
        self.dl_count = 0
        self.attach_attempts = 0

        # -- internal protocol data --------------------------------------
        self.usim = UsimSqnArray(freshness_limit=self.policy.freshness_limit)
        self.security_ctx: Optional[SecurityContext] = None
        self.pending_kasme: Optional[bytes] = None
        self.current_guti: Optional[Guti] = None
        self.events: List[UeEvent] = []
        self._last_accepted_dl_count = -1
        self._t3410_retx = 0

        link.attach_ue(self.air_msg_handler)

    # ------------------------------------------------------------------
    # Ingress: parse, decipher, sanity-check, dispatch (Section II-D)
    # ------------------------------------------------------------------
    def air_msg_handler(self, frame: bytes) -> None:
        """Entry point for every downlink frame."""
        try:
            msg = NasMessage.from_wire(frame)
        except MessageError as exc:
            self._note("malformed_frame", str(exc))
            return
        if msg.ciphertext is not None:
            msg = self._decipher(msg)
            if msg is None:
                return
        handler = getattr(self, self.RECV_PREFIX + msg.name, None)
        if handler is None:
            self._note("unhandled_message", msg.name)
            return
        handler(msg)

    def _decipher(self, msg: NasMessage) -> Optional[NasMessage]:
        if self.security_ctx is None:
            self._note("ciphered_without_ctx", "dropping frame")
            return None
        plaintext = self.security_ctx.unprotect(
            msg.ciphertext, msg.count or 0, DIR_DOWNLINK)
        try:
            name, fields = NasMessage.parse_payload(plaintext)
        except MessageError as exc:
            self._note("decipher_failed", str(exc))
            return None
        return NasMessage(name=name, fields=fields,
                          sec_header=msg.sec_header, count=msg.count,
                          mac=msg.mac)

    # ------------------------------------------------------------------
    # Security gate shared by all protected downlink messages
    # ------------------------------------------------------------------
    def _gate_protected(self, msg: NasMessage,
                        context: Optional[SecurityContext] = None
                        ) -> Dict[str, int]:
        """Run the well-formedness/MAC/replay checks; returns check flags.

        Returns a dict with keys ``plain_hdr``, ``mac_valid``, ``replay_ok``
        and ``accept`` (all 0/1).  The policy switches reproduce I1/I2.
        """
        ctx = context or self.security_ctx
        plain_hdr = 1 if msg.sec_header == c.SEC_HDR_PLAIN else 0

        if plain_hdr:
            # Protected-type messages must never arrive with a plain header;
            # the only implementation that accepts them is OAI after the
            # context exists (I2).
            accept = 1 if (self.has_security_ctx
                           and self.policy.accept_plain_after_ctx) else 0
            return {"plain_hdr": 1, "mac_valid": 0, "replay_ok": accept,
                    "accept": accept}

        if ctx is None:
            return {"plain_hdr": 0, "mac_valid": 0, "replay_ok": 0,
                    "accept": 0}

        body = msg.payload_bytes()
        mac_valid = 1 if (msg.mac is not None and msg.count is not None
                          and ctx.verify(body, msg.mac, msg.count,
                                         DIR_DOWNLINK)) else 0
        if not mac_valid:
            return {"plain_hdr": 0, "mac_valid": 0, "replay_ok": 0,
                    "accept": 0}

        replay_ok = self._check_dl_count(ctx, msg.count)
        accept = 1 if replay_ok else 0
        return {"plain_hdr": 0, "mac_valid": mac_valid,
                "replay_ok": replay_ok, "accept": accept}

    def _check_dl_count(self, ctx: SecurityContext, count: int) -> int:
        # The check *inputs* are logged (count_higher/count_last locals) so
        # the extractor can expose which relation each implementation
        # actually gates on — the I1 variants differ exactly here.
        count_higher = 1 if count >= ctx.dl_count else 0
        count_last = 1 if count == self._last_accepted_dl_count else 0
        if not self.policy.enforce_dl_count:
            # I1 (srsUE): accept anything and *reset* the counter.
            ctx.dl_count = count + 1
            self.dl_count = ctx.dl_count
            self._last_accepted_dl_count = count
            return 1
        if self.policy.replay_accept_last_only and count_last:
            # I1 (OAI): the most recent message replays successfully.
            return 1
        if not count_higher:
            return 0
        ctx.dl_count = count + 1
        self.dl_count = ctx.dl_count
        self._last_accepted_dl_count = count
        return 1

    # ------------------------------------------------------------------
    # UE-initiated procedures
    # ------------------------------------------------------------------
    def power_on(self) -> None:
        """Boot: initiate the attach procedure (Fig. 1).

        The attach request is supervised by T3410: it is retransmitted on
        each expiry up to the TS 24.301 limit, after which the UE gives
        up and waits for a new attach trigger.
        """
        self.attach_attempts += 1
        skip_auth = (self.pending_kasme is not None
                     or self.security_ctx is not None)
        self.emm_state = c.EMM_REGISTERED_INITIATED
        fields: Dict[str, object] = {"capabilities": "eea0,eea1,eia1"}
        if self.current_guti is not None:
            fields["guti"] = str(self.current_guti)
        else:
            fields["imsi"] = str(self.subscriber.imsi)
        # I4: when the context survived a reject, the UE will accept a
        # protected attach_accept without re-running auth/SMC.
        fields["reuse_ctx"] = 1 if skip_auth else 0
        self._t3410_retx = 0
        self._arm_t3410(fields)
        self._send(c.ATTACH_REQUEST, fields)

    #: States in which an expiring T3410 still owns the attach procedure:
    #: any attach-in-progress state, not just the initial one — a lost
    #: SECURITY MODE COMMAND leaves the UE authenticated but unattached,
    #: and the retransmitted ATTACH REQUEST must restart from there too.
    _T3410_RETRANSMIT_STATES = (
        c.EMM_REGISTERED_INITIATED,
        c.EMM_REGISTERED_INITIATED_AUTHENTICATED,
        c.EMM_REGISTERED_INITIATED_SECURE,
    )

    def _arm_t3410(self, fields: Dict[str, object]) -> None:
        def on_expiry():
            if self.emm_state not in self._T3410_RETRANSMIT_STATES:
                return   # the procedure moved on; nothing to retransmit
            limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3410]
            if self._t3410_retx < limit:
                self._t3410_retx += 1
                self.emm_state = c.EMM_REGISTERED_INITIATED
                self._arm_t3410(fields)
                self._send(c.ATTACH_REQUEST, fields)
            else:
                self._note("attach_timeout", "T3410 exhausted")
                self.emm_state = c.EMM_DEREGISTERED_ATTACH_NEEDED

        self.clock.start(c.T3410, self.t3410_duration, on_expiry)

    def initiate_detach(self) -> None:
        self.emm_state = c.EMM_DEREGISTERED_INITIATED
        self._send(c.DETACH_REQUEST, {"switch_off": 0}, protected=True)

    def initiate_tau(self, tracking_area: int = 1) -> None:
        self.emm_state = c.EMM_TRACKING_AREA_UPDATING_INITIATED
        self._send(c.TAU_REQUEST, {"tracking_area": tracking_area},
                   protected=True)

    def send_nas_payload(self, payload: str) -> None:
        """Application-originated NAS transport (e.g. an SMS)."""
        self._send(c.UPLINK_NAS_TRANSPORT, {"payload": payload},
                   protected=True)

    # ------------------------------------------------------------------
    # Incoming message handlers (implementation bodies)
    # ------------------------------------------------------------------
    def _recv_identity_request_impl(self, msg: NasMessage) -> None:
        requested_type = msg.get_str("identity_type", "imsi")
        allowed = 0
        if self.policy.respond_identity_always:
            allowed = 1  # I5 (OAI): IMSI on demand, any state, plaintext
        elif (self.emm_state == c.EMM_REGISTERED_INITIATED
              and not self.has_security_ctx):
            allowed = 1  # compliant: only during initial attach, pre-ctx
        if allowed and requested_type == "imsi":
            self._send(c.IDENTITY_RESPONSE,
                       {"imsi": str(self.subscriber.imsi)})
        elif allowed:
            self._send(c.IDENTITY_RESPONSE,
                       {"guti": str(self.current_guti or "")})
        else:
            self._note("identity_request_ignored", requested_type)

    def _recv_authentication_request_impl(self, msg: NasMessage) -> None:
        rand = msg.get_bytes("rand")
        autn_mac = msg.get_bytes("autn_mac")
        try:
            sqn = Sqn(msg.get_int("sqn_seq"), msg.get_int("sqn_ind"))
        except SqnError:
            # malformed SQN: indistinguishable from a corrupted AUTN
            self._send(c.AUTH_MAC_FAILURE, {"cause": c.CAUSE_MAC_FAILURE})
            return

        mac_valid = 1 if autn_mac == f1_mac(
            self.subscriber.permanent_key, rand, sqn) else 0
        if not mac_valid:
            self._send(c.AUTH_MAC_FAILURE, {"cause": c.CAUSE_MAC_FAILURE})
            return

        verdict = self.usim.peek(sqn)
        sqn_fresh = 1 if self.usim.is_globally_fresh(sqn) else 0
        sqn_in_window = 1 if verdict.accepted else 0
        sqn_equal = 1 if sqn.seq == self.usim.slots[sqn.ind] else 0

        accepted = verdict.accepted
        if not accepted and sqn_equal and self.policy.accept_equal_sqn:
            accepted = True  # I3 (srsUE): same SQN re-accepted
        if not accepted:
            self._send(c.AUTH_SYNC_FAILURE,
                       {"cause": c.CAUSE_SYNCH_FAILURE,
                        "resync_seq": verdict.resync_seq})
            return

        self.usim.verify(sqn)  # commit the slot update
        self.pending_kasme = derive_kasme(
            self.subscriber.permanent_key, rand, sqn)
        res = f2_res(self.subscriber.permanent_key, rand)
        if self.emm_state == c.EMM_REGISTERED_INITIATED:
            self.emm_state = c.EMM_REGISTERED_INITIATED_AUTHENTICATED
        self._send(c.AUTHENTICATION_RESPONSE, {"res": res})

    def _recv_security_mode_command_impl(self, msg: NasMessage) -> None:
        # SMC is protected with the *new* (pending) context keys.
        new_ctx = (SecurityContext(kasme=self.pending_kasme)
                   if self.pending_kasme is not None else None)
        if (msg.sec_header != c.SEC_HDR_PLAIN and new_ctx is None
                and self.security_ctx is not None):
            # Replayed SMC from the current context (I6 linkability probe).
            checks = self._gate_protected(msg, self.security_ctx)
        else:
            checks = self._gate_protected(msg, new_ctx)
        mac_valid = checks["mac_valid"]
        replay_ok = checks["replay_ok"]
        if not checks["accept"]:
            # Failed MAC or replay: discard silently (TS 24.301 4.4.4.2).
            self._note("smc_discarded", f"mac={mac_valid} replay={replay_ok}")
            return
        selected_eia = msg.get_str("selected_eia", "eia1")
        algo_ok = 1 if selected_eia != "eia0" else 0
        if not algo_ok:
            # Null integrity is unacceptable: SECURITY MODE REJECT.
            self._send(c.SECURITY_MODE_REJECT,
                       {"cause": c.CAUSE_CONGESTION})
            return
        if new_ctx is not None:
            self.security_ctx = new_ctx
            self.security_ctx.dl_count = (msg.count or 0) + 1
            self.dl_count = self.security_ctx.dl_count
            self._last_accepted_dl_count = msg.count or 0
            self.pending_kasme = None
        self.has_security_ctx = 1
        if self.emm_state == c.EMM_REGISTERED_INITIATED_AUTHENTICATED:
            self.emm_state = c.EMM_REGISTERED_INITIATED_SECURE
        self._send(c.SECURITY_MODE_COMPLETE, {}, protected=True)

    def _recv_attach_accept_impl(self, msg: NasMessage) -> None:
        checks = self._gate_protected(msg)
        mac_valid = checks["mac_valid"]
        replay_ok = checks["replay_ok"]
        if not checks["accept"]:
            self._note("attach_accept_rejected",
                       f"mac={mac_valid} replay={replay_ok}")
            return
        guti_str = msg.get_str("guti")
        if guti_str:
            self._apply_guti(guti_str)
        self.clock.stop(c.T3410)
        self.emm_state = c.EMM_REGISTERED
        self._send(c.ATTACH_COMPLETE, {}, protected=True)

    def _recv_attach_reject_impl(self, msg: NasMessage) -> None:
        emm_cause = msg.get_int("cause", c.CAUSE_EPS_NOT_ALLOWED)
        if self.policy.require_auth_after_reject:
            # Compliant: delete security context and identifiers.
            self.security_ctx = None
            self.pending_kasme = None
            self.has_security_ctx = 0
            self.current_guti = None
            self.guti_assigned = 0
        # I4 (srsUE): context retained; next attach skips auth/SMC.
        self.clock.stop(c.T3410)
        self.emm_state = c.EMM_DEREGISTERED_ATTACH_NEEDED
        self._note("attach_rejected", f"cause={emm_cause}")

    def _recv_authentication_reject_impl(self, msg: NasMessage) -> None:
        # Accepted in plaintext by the standard: the numb-attack vector.
        self.security_ctx = None
        self.pending_kasme = None
        self.has_security_ctx = 0
        self.emm_state = c.EMM_DEREGISTERED
        self._note("authentication_rejected", "entering deregistered")

    def _recv_guti_reallocation_command_impl(self, msg: NasMessage) -> None:
        checks = self._gate_protected(msg)
        if not checks["accept"]:
            self._note("guti_realloc_rejected",
                       f"mac={checks['mac_valid']}")
            return
        guti_str = msg.get_str("guti")
        if guti_str:
            self._apply_guti(guti_str)
        self._send(c.GUTI_REALLOCATION_COMPLETE, {}, protected=True)

    def _recv_emm_information_impl(self, msg: NasMessage) -> None:
        checks = self._gate_protected(msg)
        if checks["accept"]:
            self._note("emm_information", msg.get_str("network_name"))
        # No response either way: null_action.

    def _recv_paging_impl(self, msg: NasMessage) -> None:
        paging_id = msg.get_str("paging_id")
        if self.emm_state != c.EMM_REGISTERED:
            self._note("paging_ignored", "not registered")
            return
        paging_match = 1 if paging_id in (str(self.current_guti or ""),
                                          str(self.subscriber.imsi)) else 0
        if not paging_match:
            self._note("paging_ignored", "identity mismatch")
            return
        self.emm_state = c.EMM_SERVICE_REQUEST_INITIATED
        self._send(c.SERVICE_REQUEST, {"ksi": 0}, protected=True)

    def _recv_tau_accept_impl(self, msg: NasMessage) -> None:
        checks = self._gate_protected(msg)
        if not checks["accept"]:
            self._note("tau_accept_rejected", "")
            return
        if self.emm_state == c.EMM_TRACKING_AREA_UPDATING_INITIATED:
            self.emm_state = c.EMM_REGISTERED
            self._send(c.TAU_COMPLETE, {}, protected=True)

    def _recv_tau_reject_impl(self, msg: NasMessage) -> None:
        emm_cause = msg.get_int("cause", c.CAUSE_TA_NOT_ALLOWED)
        self.current_guti = None
        self.guti_assigned = 0
        self.emm_state = c.EMM_DEREGISTERED_ATTACH_NEEDED
        self._note("tau_rejected", f"cause={emm_cause}")

    def _recv_service_reject_impl(self, msg: NasMessage) -> None:
        emm_cause = msg.get_int("cause", c.CAUSE_CONGESTION)
        self.emm_state = c.EMM_DEREGISTERED_ATTACH_NEEDED
        self._note("service_rejected", f"cause={emm_cause}")

    def _recv_detach_request_impl(self, msg: NasMessage) -> None:
        # TS 24.301 4.4.4.2 lists detach_request among the messages a UE
        # processes without integrity protection before the secure
        # exchange completes — the standards-level gap behind the
        # kick-off/detach attacks.
        preauth_plain = 1 if (msg.sec_header == c.SEC_HDR_PLAIN
                              and not self.has_security_ctx) else 0
        if not preauth_plain:
            checks = self._gate_protected(msg)
            if not checks["accept"]:
                self._note("detach_request_rejected", "")
                return
        reattach = msg.get_int("reattach")
        self._send(c.DETACH_ACCEPT, {},
                   protected=not preauth_plain)
        self.emm_state = (c.EMM_DEREGISTERED_ATTACH_NEEDED if reattach
                          else c.EMM_DEREGISTERED)

    def _recv_detach_accept_impl(self, msg: NasMessage) -> None:
        if self.emm_state == c.EMM_DEREGISTERED_INITIATED:
            self.emm_state = c.EMM_DEREGISTERED
            self.security_ctx = None
            self.has_security_ctx = 0

    def _recv_configuration_update_command_impl(
            self, msg: NasMessage) -> None:
        # 5G Configuration Update (TS 24.501): same gate discipline, may
        # deliver a fresh 5G-GUTI; acknowledged with ..._complete.
        checks = self._gate_protected(msg)
        if not checks["accept"]:
            self._note("config_update_rejected",
                       f"mac={checks['mac_valid']}")
            return
        guti_str = msg.get_str("guti")
        if guti_str:
            self._apply_guti(guti_str)
        self._send(c.CONFIGURATION_UPDATE_COMPLETE, {}, protected=True)

    def _recv_downlink_nas_transport_impl(self, msg: NasMessage) -> None:
        checks = self._gate_protected(msg)
        if checks["accept"]:
            self._note("nas_transport", msg.get_str("payload"))

    # ------------------------------------------------------------------
    # Egress
    # ------------------------------------------------------------------
    def _send(self, name: str, fields: Dict[str, object],
              protected: bool = False) -> None:
        """Route through the named outgoing handler (for the tracer)."""
        handler = getattr(self, self.SEND_PREFIX + name, None)
        if handler is None:
            self._transmit(name, fields, protected)
        else:
            handler(fields, protected)

    def _send_impl(self, name: str, fields: Dict[str, object],
                   protected: bool) -> None:
        self._transmit(name, fields, protected)

    def _transmit(self, name: str, fields: Dict[str, object],
                  protected: bool) -> None:
        msg = NasMessage(name=name, fields=dict(fields))
        if protected and self.security_ctx is not None:
            body = msg.payload_bytes()
            _, tag, count = self.security_ctx.protect(
                body, DIR_UPLINK, cipher=False)
            msg.sec_header = c.SEC_HDR_INTEGRITY
            msg.mac = tag
            msg.count = count
            self.ul_count = self.security_ctx.ul_count
        self.link.send_uplink(msg.to_wire())

    def _apply_guti(self, guti_str: str) -> None:
        """Adopt a network-assigned GUTI, discarding malformed values."""
        try:
            self.current_guti = _parse_guti(guti_str)
            self.guti_assigned = 1
        except (ValueError, AttributeError):
            self._note("malformed_guti", guti_str[:40])

    def _note(self, kind: str, detail: str) -> None:
        self.events.append(UeEvent(kind, detail))


def _parse_guti(text: str) -> Guti:
    plmn, group, code, m_tmsi = text.split("-")
    return Guti(plmn, int(group, 16), int(code, 16), int(m_tmsi, 16))


# ---------------------------------------------------------------------------
# Handler-name synthesis
# ---------------------------------------------------------------------------
_RECV_IMPLS = {
    c.IDENTITY_REQUEST: "_recv_identity_request_impl",
    c.AUTHENTICATION_REQUEST: "_recv_authentication_request_impl",
    c.AUTHENTICATION_REJECT: "_recv_authentication_reject_impl",
    c.SECURITY_MODE_COMMAND: "_recv_security_mode_command_impl",
    c.ATTACH_ACCEPT: "_recv_attach_accept_impl",
    c.ATTACH_REJECT: "_recv_attach_reject_impl",
    c.GUTI_REALLOCATION_COMMAND: "_recv_guti_reallocation_command_impl",
    c.EMM_INFORMATION: "_recv_emm_information_impl",
    c.PAGING: "_recv_paging_impl",
    c.TAU_ACCEPT: "_recv_tau_accept_impl",
    c.TAU_REJECT: "_recv_tau_reject_impl",
    c.SERVICE_REJECT: "_recv_service_reject_impl",
    c.DETACH_REQUEST: "_recv_detach_request_impl",
    c.DETACH_ACCEPT: "_recv_detach_accept_impl",
    c.DOWNLINK_NAS_TRANSPORT: "_recv_downlink_nas_transport_impl",
    c.CONFIGURATION_UPDATE_COMMAND:
        "_recv_configuration_update_command_impl",
}


def synthesize_handlers(cls) -> None:
    """Create concretely-named recv/send handlers on ``cls``.

    Real C/C++ stacks have one named function per message (e.g. srsLTE's
    ``parse_attach_accept``, OAI's ``emm_recv_security_mode_command``);
    ``exec`` gives each wrapper its own code object so the runtime tracer
    observes those exact signatures, which is what the extractor's
    signature tables must match against.
    """
    # Compile with the defining module's filename so the runtime tracer's
    # source-directory filter sees these handlers as NAS-layer code.
    import sys

    filename = getattr(sys.modules.get(cls.__module__), "__file__",
                       __file__)

    def define(source: str, name: str) -> None:
        namespace: Dict[str, object] = {}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        setattr(cls, name, namespace[name])

    for message, impl_name in _RECV_IMPLS.items():
        handler_name = cls.RECV_PREFIX + message
        if handler_name in cls.__dict__:
            continue
        define(f"def {handler_name}(self, msg):\n"
               f"    return self.{impl_name}(msg)\n", handler_name)
    for message in c.UPLINK_MESSAGES:
        handler_name = cls.SEND_PREFIX + message
        if handler_name in cls.__dict__:
            continue
        define(f"def {handler_name}(self, fields, protected=False):\n"
               f"    return self._send_impl({message!r}, fields, "
               f"protected)\n", handler_name)


synthesize_handlers(UeNas)
