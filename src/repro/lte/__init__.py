"""4G LTE NAS-layer substrate: messages, security, identities, UE and MME.

This package is the "implementation under analysis" side of the
reproduction: a complete NAS control-plane stack whose behaviour matches
the standards where they are explicit and matches the paper's reported
deviations where the open-source stacks deviate
(:mod:`repro.lte.implementations`).
"""

from . import constants
from .channel import DIR_DOWNLINK, DIR_UPLINK, RadioLink
from .hss import Hss, HssError
from .identifiers import (Guti, GutiAllocator, Imsi, Subscriber,
                          make_subscriber)
from .messages import MessageError, NasMessage
from .mme import MmeNas
from .security import (AuthVector, SecurityContext, derive_kasme,
                       derive_nas_keys, f1_mac, f2_res,
                       generate_auth_vector, nas_cipher, nas_mac)
from .sqn import Sqn, SqnGenerator, SqnVerdict, UsimSqnArray
from .timers import SimClock, Timer, TimerError
from .ue import UeNas, UePolicy
from .implementations import (IMPLEMENTATION_NAMES, OaiLikeUe, REGISTRY,
                              ReferenceUe, SrsueLikeUe, create_ue)

__all__ = [
    "constants",
    "DIR_DOWNLINK", "DIR_UPLINK", "RadioLink",
    "Hss", "HssError",
    "Guti", "GutiAllocator", "Imsi", "Subscriber", "make_subscriber",
    "MessageError", "NasMessage",
    "MmeNas",
    "AuthVector", "SecurityContext", "derive_kasme", "derive_nas_keys",
    "f1_mac", "f2_res", "generate_auth_vector", "nas_cipher", "nas_mac",
    "Sqn", "SqnGenerator", "SqnVerdict", "UsimSqnArray",
    "SimClock", "Timer", "TimerError",
    "UeNas", "UePolicy",
    "IMPLEMENTATION_NAMES", "OaiLikeUe", "REGISTRY", "ReferenceUe",
    "SrsueLikeUe", "create_ue",
]
