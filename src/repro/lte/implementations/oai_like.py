"""OpenAirInterface-like implementation: OAI's reported issues seeded.

Table I rows reproduced here:

- **I1** broken replay protection — "OAI accepts only the last message
  when replayed" (``replay_accept_last_only=True``);
- **I2** broken integrity/confidentiality — "the OAI implementation
  accepts all security-protected messages in plain-text and un-cyphered
  after establishing the security context"
  (``accept_plain_after_ctx=True``);
- **I5** privacy leakage with identity request — the UE answers plaintext
  ``identity_request`` with the IMSI regardless of protocol state
  (``respond_identity_always=True``);
- **I6** linkability with ``security_mode_command`` follows from I1's
  last-message replay acceptance.

OAI uses the ``emm_send_``/``emm_recv_`` signature convention
(Section IX), exposed here as the concrete handler names.
"""

from __future__ import annotations

from typing import Optional

from ..channel import RadioLink
from ..identifiers import Subscriber
from ..timers import SimClock
from ..ue import UeNas, UePolicy, synthesize_handlers


def oai_policy() -> UePolicy:
    """The deviation set the paper reports for OAI."""
    return UePolicy(
        replay_accept_last_only=True,   # I1 (OAI variant)
        accept_plain_after_ctx=True,    # I2
        respond_identity_always=True,   # I5
    )


class OaiLikeUe(UeNas):
    """OAI-like UE with OAI's handler signature."""

    RECV_PREFIX = "emm_recv_"
    SEND_PREFIX = "emm_send_"

    def __init__(self, subscriber: Subscriber, link: RadioLink,
                 clock: Optional[SimClock] = None,
                 policy: Optional[UePolicy] = None,
                 t3410_duration: float = 15.0):
        super().__init__(subscriber, link, clock=clock,
                         policy=policy or oai_policy(),
                         t3410_duration=t3410_duration)


synthesize_handlers(OaiLikeUe)
