"""The closed-source commercial UE stand-in.

Compliant with TS 24.301/33.102 wherever the standard is explicit.  The
standards-level vulnerabilities (P1-P3) are necessarily present: the SQN
array accepts out-of-order values because Annex C mandates it and the
freshness limit L is optional (and disabled, matching every vendor the
paper examined).
"""

from __future__ import annotations

from typing import Optional

from ..channel import RadioLink
from ..identifiers import Subscriber
from ..timers import SimClock
from ..ue import UeNas, UePolicy, synthesize_handlers


class ReferenceUe(UeNas):
    """Reference (compliant) implementation; canonical recv_/send_ names."""

    RECV_PREFIX = "recv_"
    SEND_PREFIX = "send_"

    def __init__(self, subscriber: Subscriber, link: RadioLink,
                 clock: Optional[SimClock] = None,
                 policy: Optional[UePolicy] = None,
                 t3410_duration: float = 15.0):
        super().__init__(subscriber, link, clock=clock,
                         policy=policy or UePolicy(),
                         t3410_duration=t3410_duration)


synthesize_handlers(ReferenceUe)
