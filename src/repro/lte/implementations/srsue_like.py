"""srsUE-like implementation: srsLTE's reported issues seeded.

Table I rows reproduced here:

- **I1** broken replay protection — "srsUE accepts any replayed messages
  and resets the downlink counter with the counter value given in the
  replayed packet" (``enforce_dl_count=False``);
- **I3** counter reset with replayed ``authentication_request`` — srsUE
  accepts the *same* SQN again (``accept_equal_sqn=True``);
- **I4** security bypass with reject messages — the security context is
  not deleted on reject, so the UE can move deregistered → registered
  without re-running authentication and SMC
  (``require_auth_after_reject=False``);
- **I6** linkability with ``security_mode_command`` follows from I1: a
  replayed SMC elicits ``security_mode_complete`` from the victim but a
  MAC failure (silence) from every other UE.

srsLTE "uses the consistent signature of ``send_``/``parse_`` followed by
the actual protocol message name" (Section IX), which is the handler
naming this class exposes to the tracer.
"""

from __future__ import annotations

from typing import Optional

from ..channel import RadioLink
from ..identifiers import Subscriber
from ..timers import SimClock
from ..ue import UeNas, UePolicy, synthesize_handlers


def srsue_policy() -> UePolicy:
    """The deviation set the paper reports for srsUE."""
    return UePolicy(
        enforce_dl_count=False,          # I1
        accept_equal_sqn=True,           # I3
        require_auth_after_reject=False, # I4
    )


class SrsueLikeUe(UeNas):
    """srsUE-like UE with srsLTE's handler signature."""

    RECV_PREFIX = "parse_"
    SEND_PREFIX = "send_"

    def __init__(self, subscriber: Subscriber, link: RadioLink,
                 clock: Optional[SimClock] = None,
                 policy: Optional[UePolicy] = None,
                 t3410_duration: float = 15.0):
        super().__init__(subscriber, link, clock=clock,
                         policy=policy or srsue_policy(),
                         t3410_duration=t3410_duration)


synthesize_handlers(SrsueLikeUe)
