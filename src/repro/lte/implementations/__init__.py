"""The three 4G LTE UE implementations under analysis.

Mirrors the paper's evaluation targets:

- :mod:`reference` — the closed-source commercial stack stand-in: fully
  compliant implementation behaviour (which still carries the
  standards-level P1-P3 flaws, since those are mandated behaviour);
- :mod:`srsue_like` — srsLTE's srsUE with its reported issues (I1: no
  downlink-COUNT replay check with counter reset, I3: equal-SQN
  acceptance, I4: context survival across rejects) and srsLTE's
  ``send_``/``parse_`` handler signature;
- :mod:`oai_like` — OpenAirInterface with its reported issues (I1:
  last-message replay, I2: plain-header acceptance after context, I5:
  IMSI on demand) and OAI's ``emm_send_``/``emm_recv_`` signature.

:data:`REGISTRY` maps the implementation name to its class and the
signature configuration the model extractor needs.
"""

from .reference import ReferenceUe
from .srsue_like import SrsueLikeUe
from .oai_like import OaiLikeUe

#: name -> UE class
REGISTRY = {
    "reference": ReferenceUe,
    "srsue": SrsueLikeUe,
    "oai": OaiLikeUe,
}

IMPLEMENTATION_NAMES = tuple(REGISTRY)


def create_ue(name, subscriber, link, clock=None, policy=None):
    """Instantiate an implementation by registry name."""
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown implementation {name!r}; "
            f"choose from {IMPLEMENTATION_NAMES}") from None
    return cls(subscriber, link, clock=clock, policy=policy)


__all__ = ["ReferenceUe", "SrsueLikeUe", "OaiLikeUe", "REGISTRY",
           "IMPLEMENTATION_NAMES", "create_ue"]
