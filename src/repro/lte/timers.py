"""Simulated protocol timers on a logical clock.

The conformance runner and the testbed drive the implementations on a
discrete event clock: procedures arm timers (T3450, T3460, ...), the clock
advances, expiries fire callbacks.  TS 24.301 retransmission discipline —
"on the fifth expiry of timer T3450, the network shall abort the
reallocation procedure" — is enforced by the owners of the timers (the MME
procedures) via :data:`repro.lte.constants.TIMER_MAX_RETRANSMISSIONS`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


class TimerError(Exception):
    """Raised on invalid timer operations."""


@dataclass
class Timer:
    """One armed timer instance."""

    name: str
    deadline: float
    callback: Callable[[], None]
    cancelled: bool = False


class SimClock:
    """A discrete-event logical clock with a timer wheel."""

    def __init__(self):
        self._now = 0.0
        self._sequence = itertools.count()
        self._heap: List[Tuple[float, int, Timer]] = []
        self._active: Dict[str, Timer] = {}

    @property
    def now(self) -> float:
        return self._now

    def start(self, name: str, duration: float,
              callback: Callable[[], None]) -> Timer:
        """Arm (or re-arm) the named timer."""
        if duration < 0:
            raise TimerError("duration must be non-negative")
        self.stop(name)
        timer = Timer(name, self._now + duration, callback)
        self._active[name] = timer
        heapq.heappush(self._heap, (timer.deadline, next(self._sequence),
                                    timer))
        return timer

    def stop(self, name: str) -> bool:
        """Cancel the named timer if armed; returns whether it was."""
        timer = self._active.pop(name, None)
        if timer is None:
            return False
        timer.cancelled = True
        return True

    def is_running(self, name: str) -> bool:
        return name in self._active

    def advance(self, duration: float) -> int:
        """Move time forward, firing due timers in order; returns count.

        Timers sharing a deadline fire in arming order (FIFO, via the
        monotone sequence number in the heap entry).

        Exception contract: if a callback raises, the exception
        propagates and the clock lands *exactly* at the failed timer's
        deadline — ``now`` was set before the callback ran, the failed
        timer is already disarmed, and every later timer stays armed in
        the heap.  A subsequent ``advance``/``fire_next`` resumes from
        that instant, firing any timers that were due in the aborted
        window next.
        """
        if duration < 0:
            raise TimerError("cannot advance time backwards")
        target = self._now + duration
        fired = 0
        while self._heap and self._heap[0][0] <= target:
            deadline, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = deadline
            self._active.pop(timer.name, None)
            timer.callback()
            fired += 1
        self._now = target
        return fired

    def fire_next(self) -> Optional[str]:
        """Jump to and fire the next pending expiry (for test drivers).

        Shares :meth:`advance`'s exception contract: a raising callback
        leaves the clock at the failed timer's deadline with all later
        timers armed.
        """
        while self._heap:
            deadline, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = deadline
            self._active.pop(timer.name, None)
            timer.callback()
            return timer.name
        return None

    def pending(self) -> List[str]:
        return sorted(self._active)
