"""NAS security: key hierarchy, EPS-AKA vectors, integrity and ciphering.

Functional (not cryptographically hardened) realisations of the primitives
the NAS layer needs: the milenage-style authentication functions f1-f5, the
KASME→K_NASint/K_NASenc derivations, EIA-style MAC computation over
(COUNT, message), and EEA-style stream ciphering.  They are built on
``hashlib``/``hmac`` so that MAC forgery and ciphertext decryption without
the key are computationally excluded — which is all the Dolev-Yao analysis
and the testbed validation require.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

from .sqn import Sqn

MAC_LEN = 8  # truncated tag length in bytes (NAS uses 32-bit; 64 here)


def _prf(key: bytes, *parts: bytes) -> bytes:
    """Keyed PRF used for all derivations and authentication functions."""
    message = b"|".join(parts)
    return hmac.new(key, message, hashlib.sha256).digest()


# ---------------------------------------------------------------------------
# EPS-AKA (TS 33.401 / TS 33.102) — authentication vectors
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AuthVector:
    """One authentication vector (RAND, AUTN, XRES, KASME)."""

    rand: bytes
    autn_sqn: Sqn          # SQN component of AUTN (xor-with-AK abstracted)
    autn_mac: bytes        # f1(K, RAND, SQN) — verifiable with permanent K
    xres: bytes
    kasme: bytes


def f1_mac(permanent_key: bytes, rand: bytes, sqn: Sqn) -> bytes:
    """Network authentication code in AUTN (verifies under permanent K).

    Because the key is the *permanent* subscriber key, the tag verifies
    regardless of session — the reason replayed authentication_requests
    pass the MAC check in attack P1.
    """
    return _prf(permanent_key, b"f1", rand,
                sqn.value.to_bytes(8, "big"))[:MAC_LEN]


def f2_res(permanent_key: bytes, rand: bytes) -> bytes:
    """Challenge response RES/XRES."""
    return _prf(permanent_key, b"f2", rand)[:MAC_LEN]


def derive_kasme(permanent_key: bytes, rand: bytes, sqn: Sqn) -> bytes:
    """KASME derivation (abstracts CK/IK and the KDF of TS 33.401).

    Note KASME depends on SQN: accepting a stale SQN regenerates *old*
    session keys, desynchronising UE and legitimate MME — the P1 effect.
    """
    return _prf(permanent_key, b"kasme", rand, sqn.value.to_bytes(8, "big"))


def generate_auth_vector(permanent_key: bytes, sqn: Sqn,
                         rand: Optional[bytes] = None) -> AuthVector:
    if rand is None:
        rand = _prf(permanent_key, b"rand", sqn.value.to_bytes(8, "big"))[:16]
    return AuthVector(
        rand=rand,
        autn_sqn=sqn,
        autn_mac=f1_mac(permanent_key, rand, sqn),
        xres=f2_res(permanent_key, rand),
        kasme=derive_kasme(permanent_key, rand, sqn),
    )


# ---------------------------------------------------------------------------
# NAS security context
# ---------------------------------------------------------------------------
def derive_nas_keys(kasme: bytes) -> Tuple[bytes, bytes]:
    """(K_NASint, K_NASenc) from KASME."""
    return _prf(kasme, b"nas-int")[:16], _prf(kasme, b"nas-enc")[:16]


def nas_mac(k_nas_int: bytes, count: int, direction: int,
            payload: bytes) -> bytes:
    """EIA-style integrity tag over (COUNT, direction, payload)."""
    return _prf(k_nas_int, b"eia", count.to_bytes(4, "big"),
                bytes([direction]), payload)[:MAC_LEN]


def nas_cipher(k_nas_enc: bytes, count: int, direction: int,
               payload: bytes) -> bytes:
    """EEA-style stream cipher (XOR with a counter-mode keystream).

    Encryption and decryption are the same operation.
    """
    keystream = b""
    block = 0
    while len(keystream) < len(payload):
        keystream += _prf(k_nas_enc, b"eea", count.to_bytes(4, "big"),
                          bytes([direction]), block.to_bytes(4, "big"))
        block += 1
    return bytes(a ^ b for a, b in zip(payload, keystream))


DIR_UPLINK = 0
DIR_DOWNLINK = 1


@dataclass
class SecurityContext:
    """An established NAS security context with its COUNT pair.

    ``dl_count``/``ul_count`` are the *next expected* NAS COUNT values.
    TS 24.301: "for a given NAS security context, a given NAS COUNT value
    shall be accepted at most one time and only if message integrity
    verifies correctly" — :meth:`accept_dl_count` implements the compliant
    check; the implementation variants override its policy to reproduce
    the I1/I3 replay-protection bugs.
    """

    kasme: bytes
    k_nas_int: bytes = b""
    k_nas_enc: bytes = b""
    ul_count: int = 0
    dl_count: int = 0

    def __post_init__(self):
        if not self.k_nas_int or not self.k_nas_enc:
            self.k_nas_int, self.k_nas_enc = derive_nas_keys(self.kasme)

    # -- sender side ----------------------------------------------------
    def protect(self, payload: bytes, direction: int,
                cipher: bool = True) -> Tuple[bytes, bytes, int]:
        """Return (protected payload, mac, count) and advance the count."""
        count = self.ul_count if direction == DIR_UPLINK else self.dl_count
        body = nas_cipher(self.k_nas_enc, count, direction,
                          payload) if cipher else payload
        tag = nas_mac(self.k_nas_int, count, direction, body)
        if direction == DIR_UPLINK:
            self.ul_count += 1
        else:
            self.dl_count += 1
        return body, tag, count

    # -- receiver side ----------------------------------------------------
    def verify(self, body: bytes, tag: bytes, count: int,
               direction: int) -> bool:
        expected = nas_mac(self.k_nas_int, count, direction, body)
        return hmac.compare_digest(expected, tag)

    def unprotect(self, body: bytes, count: int, direction: int,
                  ciphered: bool = True) -> bytes:
        if not ciphered:
            return body
        return nas_cipher(self.k_nas_enc, count, direction, body)

    def accept_dl_count(self, count: int) -> bool:
        """Compliant replay check: strictly-increasing downlink COUNT."""
        if count < self.dl_count:
            return False
        self.dl_count = count + 1
        return True

    def accept_ul_count(self, count: int) -> bool:
        if count < self.ul_count:
            return False
        self.ul_count = count + 1
        return True
