"""MME-side NAS layer implementation.

The network endpoint for one UE link: runs the attach/authentication/SMC
sequence, allocates GUTIs, and drives the network-initiated common
procedures (GUTI reallocation, paging, network detach) with the TS 24.301
retransmission discipline — T3450 is retransmitted four times and "on the
fifth expiry ... the network shall abort the reallocation procedure",
which is exactly the budget the P3 selective-denial attack spends.

The paper did not have core-network source access and used a hand-built
MME model for verification; this implementation exists for the *testbed*
(end-to-end attack validation) and to show the extraction pipeline also
works on the network side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from . import constants as c
from .channel import RadioLink
from .hss import Hss, HssError
from .identifiers import Guti, GutiAllocator, Imsi, redact
from .messages import MessageError, NasMessage
from .security import (AuthVector, DIR_DOWNLINK, DIR_UPLINK,
                       SecurityContext)
from .timers import SimClock


@dataclass
class MmeEvent:
    kind: str
    detail: str = ""


class MmeNas:
    """MME NAS endpoint serving a single UE over ``link``."""

    RECV_PREFIX = "recv_"
    SEND_PREFIX = "send_"

    STATE_VARIABLES = ("emm_state", "has_security_ctx", "t3450_retx",
                       "t3460_retx")

    def __init__(self, hss: Hss, link: RadioLink,
                 clock: Optional[SimClock] = None,
                 allocator: Optional[GutiAllocator] = None,
                 t3450_duration: float = 6.0,
                 t3460_duration: float = 6.0,
                 t3470_duration: float = 6.0):
        self.hss = hss
        self.link = link
        self.clock = clock or SimClock()
        self.allocator = allocator or GutiAllocator()
        self.t3450_duration = t3450_duration
        self.t3460_duration = t3460_duration
        self.t3470_duration = t3470_duration

        self.emm_state = c.MME_DEREGISTERED
        self.has_security_ctx = 0
        self.t3450_retx = 0
        self.t3460_retx = 0
        self.t3470_retx = 0
        self.t3555_retx = 0

        self.session_imsi: Optional[str] = None
        self.security_ctx: Optional[SecurityContext] = None
        self.pending_vector: Optional[AuthVector] = None
        self.current_guti: Optional[Guti] = None
        self.known_gutis: Dict[str, str] = {}
        self.events: List[MmeEvent] = []
        self._pending_attach_fields: Dict[str, object] = {}
        self._retransmit_payload: Optional[NasMessage] = None
        self.aborted_procedures: List[str] = []

        link.attach_mme(self.uplink_msg_handler)

    # ------------------------------------------------------------------
    def uplink_msg_handler(self, frame: bytes) -> None:
        try:
            msg = NasMessage.from_wire(frame)
        except MessageError as exc:
            self._note("malformed_frame", str(exc))
            return
        handler = getattr(self, self.RECV_PREFIX + msg.name, None)
        if handler is None:
            self._note("unhandled_message", msg.name)
            return
        handler(msg)

    # ------------------------------------------------------------------
    # Attach + common procedures
    # ------------------------------------------------------------------
    def recv_attach_request(self, msg: NasMessage) -> None:
        imsi = msg.get_str("imsi")
        guti = msg.get_str("guti")
        if not imsi and guti in self.known_gutis:
            imsi = self.known_gutis[guti]
        if not imsi:
            # Unknown temporary identity: ask for the permanent one.
            # Supervised by T3470 (TS 24.301 Section 5.4.4.3).
            self.emm_state = c.MME_COMMON_PROCEDURE_INITIATED
            self.t3470_retx = 0
            self._arm_t3470({"identity_type": "imsi"})
            self._send(c.IDENTITY_REQUEST, {"identity_type": "imsi"})
            return
        self.session_imsi = imsi
        self._pending_attach_fields = dict(msg.fields)
        self._start_authentication()

    def recv_identity_response(self, msg: NasMessage) -> None:
        self.clock.stop(c.T3470)
        self.t3470_retx = 0
        imsi = msg.get_str("imsi")
        if not imsi:
            self._send(c.ATTACH_REJECT, {"cause": c.CAUSE_IMSI_UNKNOWN})
            self.emm_state = c.MME_DEREGISTERED
            return
        self.session_imsi = imsi
        self._start_authentication()

    def _start_authentication(self) -> None:
        try:
            vector = self.hss.get_auth_vector(self.session_imsi)
        except HssError:
            # unknown subscriber (or attacker-chosen junk identity)
            self._send(c.ATTACH_REJECT, {"cause": c.CAUSE_IMSI_UNKNOWN})
            self.emm_state = c.MME_DEREGISTERED
            return
        self.pending_vector = vector
        self.emm_state = c.MME_COMMON_PROCEDURE_INITIATED
        request = {
            "rand": vector.rand,
            "sqn_seq": vector.autn_sqn.seq,
            "sqn_ind": vector.autn_sqn.ind,
            "autn_mac": vector.autn_mac,
        }
        self.t3460_retx = 0
        self._arm_t3460(request)
        self._send(c.AUTHENTICATION_REQUEST, request)

    def recv_authentication_response(self, msg: NasMessage) -> None:
        if self.pending_vector is None:
            self._note("unexpected_auth_response", "")
            return
        res = msg.get_bytes("res")
        if res != self.pending_vector.xres:
            self._send(c.AUTHENTICATION_REJECT, {})
            self.emm_state = c.MME_DEREGISTERED
            return
        self.clock.stop(c.T3460)
        self.security_ctx = SecurityContext(
            kasme=self.pending_vector.kasme)
        self.has_security_ctx = 1
        # T3460 also supervises the SMC phase (TS 24.301 Section 5.4.3.2):
        # a lost SECURITY MODE COMMAND is retransmitted, not wedged.
        smc_fields = {"selected_eia": "eia1", "selected_eea": "eea0"}
        self.t3460_retx = 0
        self._arm_t3460(smc_fields, name=c.SECURITY_MODE_COMMAND,
                        protected=True)
        self._send(c.SECURITY_MODE_COMMAND, smc_fields, protected=True)

    def recv_auth_mac_failure(self, msg: NasMessage) -> None:
        self.clock.stop(c.T3460)
        self._note("auth_mac_failure", "aborting attach")
        self._send(c.ATTACH_REJECT, {"cause": c.CAUSE_ILLEGAL_UE})
        self.emm_state = c.MME_DEREGISTERED

    def recv_auth_sync_failure(self, msg: NasMessage) -> None:
        if self.session_imsi is None:
            self._note("unexpected_sync_failure", "no session")
            return
        self.clock.stop(c.T3460)
        resync_seq = max(0, msg.get_int("resync_seq"))
        try:
            self.hss.resynchronise(self.session_imsi, resync_seq)
        except HssError:
            self._note("sync_failure_unknown_imsi",
                       redact(self.session_imsi))
            return
        self._note("auth_sync_failure", f"resync to {resync_seq}")
        self._start_authentication()

    def recv_security_mode_complete(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            return
        self.clock.stop(c.T3460)
        self.t3460_retx = 0
        guti = self.allocator.allocate(
            _imsi_from_string(self.session_imsi))
        self.current_guti = guti
        self.known_gutis[str(guti)] = self.session_imsi
        self.t3450_retx = 0
        self._arm_t3450(c.ATTACH_ACCEPT,
                        {"guti": str(guti), "tai_list": "1"})
        self._send(c.ATTACH_ACCEPT,
                   {"guti": str(guti), "tai_list": "1"},
                   protected=True)

    def recv_security_mode_reject(self, msg: NasMessage) -> None:
        self.clock.stop(c.T3460)
        self.t3460_retx = 0
        self._note("smc_rejected_by_ue", "")
        self.emm_state = c.MME_DEREGISTERED

    def recv_attach_complete(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            return
        self.clock.stop(c.T3450)
        self.emm_state = c.MME_REGISTERED

    # ------------------------------------------------------------------
    def recv_tracking_area_update_request(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            return
        self._send(c.TAU_ACCEPT, {"tai_list": "1,2"}, protected=True)

    def recv_tracking_area_update_complete(self, msg: NasMessage) -> None:
        self._verify_uplink(msg)

    def recv_service_request(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            self._send(c.SERVICE_REJECT, {"cause": c.CAUSE_CONGESTION})
            return
        self._note("service_granted", "")

    def recv_detach_request(self, msg: NasMessage) -> None:
        if msg.sec_header != c.SEC_HDR_PLAIN and not self._verify_uplink(msg):
            return
        self._send(c.DETACH_ACCEPT, {})
        self.emm_state = c.MME_DEREGISTERED
        self.security_ctx = None
        self.has_security_ctx = 0

    def recv_detach_accept(self, msg: NasMessage) -> None:
        if self.emm_state == c.MME_DEREGISTERED_INITIATED:
            self.emm_state = c.MME_DEREGISTERED
            self.security_ctx = None
            self.has_security_ctx = 0

    def recv_guti_reallocation_complete(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            return
        self.clock.stop(c.T3450)
        self.t3450_retx = 0
        self._note("guti_reallocation_done", str(self.current_guti))

    # ------------------------------------------------------------------
    # Network-initiated procedures
    # ------------------------------------------------------------------
    def initiate_guti_reallocation(self) -> None:
        guti = self.allocator.allocate(_imsi_from_string(self.session_imsi))
        previous = self.current_guti
        self.current_guti = guti
        self.known_gutis[str(guti)] = self.session_imsi
        if previous is not None:
            self.known_gutis.pop(str(previous), None)
        self.t3450_retx = 0
        fields = {"guti": str(guti)}
        self._arm_t3450(c.GUTI_REALLOCATION_COMMAND, fields)
        self._send(c.GUTI_REALLOCATION_COMMAND, fields, protected=True)

    def initiate_configuration_update(self) -> None:
        """5G Configuration Update (TS 24.501): supervised by T3555,
        retransmitted four times, aborted on the fifth expiry — the same
        drop budget P3 exploits in 4G."""
        guti = self.allocator.allocate(_imsi_from_string(self.session_imsi))
        previous = self.current_guti
        self.current_guti = guti
        self.known_gutis[str(guti)] = self.session_imsi
        if previous is not None:
            self.known_gutis.pop(str(previous), None)
        fields = {"guti": str(guti)}
        self._arm_t3555(fields)
        self._send(c.CONFIGURATION_UPDATE_COMMAND, fields, protected=True)

    def recv_configuration_update_complete(self, msg: NasMessage) -> None:
        if not self._verify_uplink(msg):
            return
        self.clock.stop(c.T3555)
        self.t3555_retx = 0
        self._note("configuration_update_done", str(self.current_guti))

    def _arm_t3555(self, fields: Dict[str, object]) -> None:
        def on_expiry():
            limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3555]
            if self.t3555_retx < limit:
                self.t3555_retx += 1
                self._send(c.CONFIGURATION_UPDATE_COMMAND, fields,
                           protected=True)
                self._arm_t3555(fields)
            else:
                self.aborted_procedures.append(
                    c.CONFIGURATION_UPDATE_COMMAND)
                self._note("procedure_aborted", "configuration_update")
                self.t3555_retx = 0

        self.clock.start(c.T3555, self.t3450_duration, on_expiry)

    def send_information(self, network_name: str,
                         ciphered: bool = False) -> None:
        """EMM INFORMATION — optionally ciphered (EEA over the payload)."""
        self._send(c.EMM_INFORMATION, {"network_name": network_name},
                   protected=True, ciphered=ciphered)

    def initiate_paging(self) -> None:
        paging_id = str(self.current_guti or self.session_imsi or "")
        self._send(c.PAGING, {"paging_id": paging_id})

    def initiate_detach(self, reattach: bool = False) -> None:
        self.emm_state = c.MME_DEREGISTERED_INITIATED
        self._send(c.DETACH_REQUEST, {"reattach": int(reattach)},
                   protected=True)

    # ------------------------------------------------------------------
    # Timers (the P3 retransmission budget)
    # ------------------------------------------------------------------
    def _arm_t3450(self, name: str, fields: Dict[str, object]) -> None:
        def on_expiry():
            limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3450]
            if self.t3450_retx < limit:
                self.t3450_retx += 1
                self._send(name, fields, protected=True)
                self._arm_t3450(name, fields)
            else:
                # Fifth expiry: abort; both sides keep the old state.
                self.aborted_procedures.append(name)
                self._note("procedure_aborted", name)
                self.t3450_retx = 0

        self.clock.start(c.T3450, self.t3450_duration, on_expiry)

    def _arm_t3460(self, request: Dict[str, object],
                   name: str = c.AUTHENTICATION_REQUEST,
                   protected: bool = False) -> None:
        def on_expiry():
            limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3460]
            if self.t3460_retx < limit:
                self.t3460_retx += 1
                self._send(name, request, protected=protected)
                self._arm_t3460(request, name=name, protected=protected)
            else:
                self.aborted_procedures.append(name)
                self._note("procedure_aborted",
                           "authentication"
                           if name == c.AUTHENTICATION_REQUEST
                           else "security_mode_control")
                self.t3460_retx = 0

        self.clock.start(c.T3460, self.t3460_duration, on_expiry)

    def _arm_t3470(self, request: Dict[str, object]) -> None:
        def on_expiry():
            limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3470]
            if self.t3470_retx < limit:
                self.t3470_retx += 1
                self._send(c.IDENTITY_REQUEST, request)
                self._arm_t3470(request)
            else:
                self.aborted_procedures.append(c.IDENTITY_REQUEST)
                self._note("procedure_aborted", "identification")
                self.t3470_retx = 0

        self.clock.start(c.T3470, self.t3470_duration, on_expiry)

    # ------------------------------------------------------------------
    def _verify_uplink(self, msg: NasMessage) -> bool:
        if self.security_ctx is None:
            self._note("uplink_without_ctx", msg.name)
            return False
        if msg.sec_header == c.SEC_HDR_PLAIN:
            self._note("uplink_plain_rejected", msg.name)
            return False
        body = msg.payload_bytes()
        if msg.mac is None or msg.count is None:
            return False
        if not self.security_ctx.verify(body, msg.mac, msg.count,
                                        DIR_UPLINK):
            self._note("uplink_mac_failure", msg.name)
            return False
        if not self.security_ctx.accept_ul_count(msg.count):
            self._note("uplink_replay", msg.name)
            return False
        return True

    def _send(self, name: str, fields: Dict[str, object],
              protected: bool = False, ciphered: bool = False) -> None:
        msg = NasMessage(name=name, fields=dict(fields))
        if protected and self.security_ctx is not None:
            body = msg.payload_bytes()
            new_ctx = (name == c.SECURITY_MODE_COMMAND)
            # MAC-then-encrypt over the plaintext payload: the receiver
            # deciphers with the frame's COUNT and verifies the tag over
            # the recovered plaintext.
            _, tag, count = self.security_ctx.protect(
                body, DIR_DOWNLINK, cipher=False)
            msg.mac = tag
            msg.count = count
            if ciphered:
                from .security import nas_cipher
                msg.ciphertext = nas_cipher(
                    self.security_ctx.k_nas_enc, count, DIR_DOWNLINK,
                    body)
                msg.sec_header = c.SEC_HDR_INTEGRITY_CIPHERED
            else:
                msg.sec_header = (c.SEC_HDR_INTEGRITY_NEW_CTX if new_ctx
                                  else c.SEC_HDR_INTEGRITY)
        self.link.send_downlink(msg.to_wire())

    def _note(self, kind: str, detail: str) -> None:
        self.events.append(MmeEvent(kind, detail))


def _imsi_from_string(text: str) -> Imsi:
    return Imsi(text[:3], text[3:5], text[5:])
