"""Protocol vocabulary from the standards (TS 24.301 / TS 33.102).

The paper's key extraction insight is that "4G LTE state names defined in
the standards are directly used in the implementations to ensure
interoperability" and message names appear inside function signatures.
This module is the single source of those standard names: the UE/MME
implementations use them, the instrumentation logs them, and the model
extractor's signature tables are built from them.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# EMM states — UE side (TS 24.301 Section 5.1.3.2)
# ---------------------------------------------------------------------------
EMM_NULL = "EMM_NULL"
EMM_DEREGISTERED = "EMM_DEREGISTERED"
EMM_REGISTERED_INITIATED = "EMM_REGISTERED_INITIATED"
EMM_REGISTERED = "EMM_REGISTERED"
EMM_DEREGISTERED_INITIATED = "EMM_DEREGISTERED_INITIATED"
EMM_TRACKING_AREA_UPDATING_INITIATED = "EMM_TRACKING_AREA_UPDATING_INITIATED"
EMM_SERVICE_REQUEST_INITIATED = "EMM_SERVICE_REQUEST_INITIATED"

#: Sub-states the automated extraction surfaces (RQ2: ProChecker extracts
#: sub-states of several procedures that hand-built models collapse).
EMM_REGISTERED_INITIATED_AUTHENTICATED = "EMM_REGISTERED_INITIATED_AUTHENTICATED"
EMM_REGISTERED_INITIATED_SECURE = "EMM_REGISTERED_INITIATED_SECURE"
EMM_REGISTERED_NORMAL_SERVICE = "EMM_REGISTERED_NORMAL_SERVICE"
EMM_DEREGISTERED_ATTACH_NEEDED = "EMM_DEREGISTERED_ATTACH_NEEDED"

UE_STATES = (
    EMM_NULL,
    EMM_DEREGISTERED,
    EMM_REGISTERED_INITIATED,
    EMM_REGISTERED_INITIATED_AUTHENTICATED,
    EMM_REGISTERED_INITIATED_SECURE,
    EMM_REGISTERED,
    EMM_REGISTERED_NORMAL_SERVICE,
    EMM_DEREGISTERED_INITIATED,
    EMM_DEREGISTERED_ATTACH_NEEDED,
    EMM_TRACKING_AREA_UPDATING_INITIATED,
    EMM_SERVICE_REQUEST_INITIATED,
)

# ---------------------------------------------------------------------------
# EMM states — MME side (TS 24.301 Section 5.1.3.4)
# ---------------------------------------------------------------------------
MME_DEREGISTERED = "MME_EMM_DEREGISTERED"
MME_COMMON_PROCEDURE_INITIATED = "MME_EMM_COMMON_PROCEDURE_INITIATED"
MME_REGISTERED = "MME_EMM_REGISTERED"
MME_DEREGISTERED_INITIATED = "MME_EMM_DEREGISTERED_INITIATED"

MME_STATES = (
    MME_DEREGISTERED,
    MME_COMMON_PROCEDURE_INITIATED,
    MME_REGISTERED,
    MME_DEREGISTERED_INITIATED,
)

# ---------------------------------------------------------------------------
# NAS message names (TS 24.301 Section 8.2)
# ---------------------------------------------------------------------------
ATTACH_REQUEST = "attach_request"
ATTACH_ACCEPT = "attach_accept"
ATTACH_COMPLETE = "attach_complete"
ATTACH_REJECT = "attach_reject"
IDENTITY_REQUEST = "identity_request"
IDENTITY_RESPONSE = "identity_response"
AUTHENTICATION_REQUEST = "authentication_request"
AUTHENTICATION_RESPONSE = "authentication_response"
AUTHENTICATION_REJECT = "authentication_reject"
AUTH_MAC_FAILURE = "auth_mac_failure"
AUTH_SYNC_FAILURE = "auth_sync_failure"
SECURITY_MODE_COMMAND = "security_mode_command"
SECURITY_MODE_COMPLETE = "security_mode_complete"
SECURITY_MODE_REJECT = "security_mode_reject"
EMM_INFORMATION = "emm_information"
GUTI_REALLOCATION_COMMAND = "guti_reallocation_command"
GUTI_REALLOCATION_COMPLETE = "guti_reallocation_complete"
TAU_REQUEST = "tracking_area_update_request"
TAU_ACCEPT = "tracking_area_update_accept"
TAU_COMPLETE = "tracking_area_update_complete"
TAU_REJECT = "tracking_area_update_reject"
SERVICE_REQUEST = "service_request"
SERVICE_REJECT = "service_reject"
PAGING = "paging"
DETACH_REQUEST = "detach_request"
DETACH_ACCEPT = "detach_accept"
DOWNLINK_NAS_TRANSPORT = "downlink_nas_transport"
UPLINK_NAS_TRANSPORT = "uplink_nas_transport"
#: 5G Configuration Update procedure (TS 24.501) — the paper's "Impact on
#: 5G": supervised by T3555 with the same five-expiry abort discipline,
#: hence vulnerable to the same P3 selective denial.
CONFIGURATION_UPDATE_COMMAND = "configuration_update_command"
CONFIGURATION_UPDATE_COMPLETE = "configuration_update_complete"

#: Messages the network (MME) sends to the UE.
DOWNLINK_MESSAGES = (
    ATTACH_ACCEPT, ATTACH_REJECT, IDENTITY_REQUEST, AUTHENTICATION_REQUEST,
    AUTHENTICATION_REJECT, SECURITY_MODE_COMMAND, EMM_INFORMATION,
    GUTI_REALLOCATION_COMMAND, TAU_ACCEPT, TAU_REJECT, SERVICE_REJECT,
    PAGING, DETACH_REQUEST, DETACH_ACCEPT, DOWNLINK_NAS_TRANSPORT,
    CONFIGURATION_UPDATE_COMMAND,
)

#: Messages the UE sends to the network.
UPLINK_MESSAGES = (
    ATTACH_REQUEST, ATTACH_COMPLETE, IDENTITY_RESPONSE,
    AUTHENTICATION_RESPONSE, AUTH_MAC_FAILURE, AUTH_SYNC_FAILURE,
    SECURITY_MODE_COMPLETE, SECURITY_MODE_REJECT,
    GUTI_REALLOCATION_COMPLETE, TAU_REQUEST, TAU_COMPLETE, SERVICE_REQUEST,
    DETACH_REQUEST, DETACH_ACCEPT, UPLINK_NAS_TRANSPORT,
    CONFIGURATION_UPDATE_COMPLETE,
)

ALL_MESSAGES = tuple(dict.fromkeys(DOWNLINK_MESSAGES + UPLINK_MESSAGES))

# ---------------------------------------------------------------------------
# Security header types (TS 24.301 Section 9.3.1)
# ---------------------------------------------------------------------------
SEC_HDR_PLAIN = 0x0
SEC_HDR_INTEGRITY = 0x1
SEC_HDR_INTEGRITY_CIPHERED = 0x2
SEC_HDR_INTEGRITY_NEW_CTX = 0x3
SEC_HDR_INTEGRITY_CIPHERED_NEW_CTX = 0x4

SEC_HDR_TYPES = (
    SEC_HDR_PLAIN, SEC_HDR_INTEGRITY, SEC_HDR_INTEGRITY_CIPHERED,
    SEC_HDR_INTEGRITY_NEW_CTX, SEC_HDR_INTEGRITY_CIPHERED_NEW_CTX,
)

#: Downlink messages that must be integrity protected with the NAS security
#: context once it is established.  ``authentication_request`` is *not*
#: here: its integrity comes from AUTN under the permanent key K, which is
#: why stale ones still verify (the P1 root cause).
PROTECTED_DOWNLINK = (
    ATTACH_ACCEPT, SECURITY_MODE_COMMAND, EMM_INFORMATION,
    GUTI_REALLOCATION_COMMAND, TAU_ACCEPT, DETACH_REQUEST,
    DOWNLINK_NAS_TRANSPORT, CONFIGURATION_UPDATE_COMMAND,
)

#: Downlink messages legitimately sent before any NAS security context.
PLAIN_DOWNLINK = (
    IDENTITY_REQUEST, AUTHENTICATION_REQUEST, AUTHENTICATION_REJECT,
    ATTACH_REJECT, TAU_REJECT, SERVICE_REJECT, PAGING,
)

#: Downlink messages whose delivery during the attach procedure is
#: supervised by an MME retransmission timer (T3470 / T3460 / T3450,
#: TS 24.301 Section 10.2): bounded loss of any of these is absorbed by
#: the retransmission discipline rather than wedging the procedure.
#: This is the default scope for channel chaos impairments — see
#: :class:`repro.lte.channel.ChaosConfig`.
ATTACH_SUPERVISED_DOWNLINK = (
    IDENTITY_REQUEST, AUTHENTICATION_REQUEST, SECURITY_MODE_COMMAND,
    ATTACH_ACCEPT,
)

#: Replay scope per downlink message (used by the CPV feasibility bridge):
#: - ``global``: verifies across sessions (AUTN under permanent K) — an
#:   adversary may harvest it days in advance (the P1 capture phase);
#: - ``session``: MAC'd under the current NAS context — replay only works
#:   within the context (and only if the receiver's COUNT check is broken);
#: - ``plain``: no cryptographic binding at all.
REPLAY_SCOPE = {}
for _name in PLAIN_DOWNLINK:
    REPLAY_SCOPE[_name] = "plain"
for _name in PROTECTED_DOWNLINK:
    REPLAY_SCOPE[_name] = "session"
REPLAY_SCOPE[AUTHENTICATION_REQUEST] = "global"

# ---------------------------------------------------------------------------
# Timers (TS 24.301 Section 10.2) — (name, retransmission limit)
# ---------------------------------------------------------------------------
T3410 = "T3410"  # attach (UE)
T3450 = "T3450"  # GUTI reallocation / attach accept (MME)
T3460 = "T3460"  # authentication / SMC (MME)
T3470 = "T3470"  # identity (MME)
T3555 = "T3555"  # 5G configuration update (AMF, TS 24.501)

#: "on the fifth expiry of timer T3450, the network shall abort the
#: reallocation procedure" — i.e. 4 retransmissions after the first send.
TIMER_MAX_RETRANSMISSIONS = {T3410: 4, T3450: 4, T3460: 4, T3470: 4,
                             T3555: 4}

# EMM cause values used by reject messages (TS 24.301 Annex A, subset)
CAUSE_IMSI_UNKNOWN = 2
CAUSE_ILLEGAL_UE = 3
CAUSE_EPS_NOT_ALLOWED = 7
CAUSE_PLMN_NOT_ALLOWED = 11
CAUSE_TA_NOT_ALLOWED = 12
CAUSE_CONGESTION = 22
CAUSE_MAC_FAILURE = 20
CAUSE_SYNCH_FAILURE = 21
