"""Subscriber and temporary identifiers (IMSI, GUTI, TMSI).

The privacy properties revolve around these: the IMSI must only be exposed
when strictly necessary (I5), the GUTI must be reallocated frequently
enough to prevent tracking (P3's impact), and reuse of either across
observations is a linkability signal the CPV equivalence check detects.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Imsi:
    """International Mobile Subscriber Identity: MCC+MNC+MSIN."""

    mcc: str
    mnc: str
    msin: str

    def __post_init__(self):
        if not (self.mcc.isdigit() and len(self.mcc) == 3):
            raise ValueError("MCC must be 3 digits")
        if not (self.mnc.isdigit() and len(self.mnc) in (2, 3)):
            raise ValueError("MNC must be 2-3 digits")
        if not (self.msin.isdigit() and 9 <= len(self.msin) <= 10):
            raise ValueError("MSIN must be 9-10 digits")

    def __str__(self) -> str:
        return f"{self.mcc}{self.mnc}{self.msin}"


@dataclass(frozen=True)
class Guti:
    """Globally Unique Temporary Identifier: PLMN + MME group/code + M-TMSI."""

    plmn: str
    mme_group: int
    mme_code: int
    m_tmsi: int

    def __post_init__(self):
        if not 0 <= self.m_tmsi < (1 << 32):
            raise ValueError("M-TMSI must fit in 32 bits")
        if not 0 <= self.mme_group < (1 << 16):
            raise ValueError("MME group must fit in 16 bits")
        if not 0 <= self.mme_code < (1 << 8):
            raise ValueError("MME code must fit in 8 bits")

    def __str__(self) -> str:
        return (f"{self.plmn}-{self.mme_group:04x}-{self.mme_code:02x}-"
                f"{self.m_tmsi:08x}")


class GutiAllocator:
    """MME-side deterministic GUTI allocation.

    Deterministic (seeded) so tests and the testbed replay identically;
    allocation order is still unique per subscriber/epoch.
    """

    def __init__(self, plmn: str = "00101", mme_group: int = 1,
                 mme_code: int = 1, seed: int = 0):
        self.plmn = plmn
        self.mme_group = mme_group
        self.mme_code = mme_code
        self._counter = seed
        # Allocator-secret keying material.  Deriving it from the seeded
        # configuration keeps allocation deterministic for replay, but an
        # observer who does not hold the secret cannot regenerate the
        # IMSI→M-TMSI mapping by enumerating the low-entropy counter.
        self._secret = hashlib.sha256(
            f"guti-allocator:{plmn}:{mme_group}:{mme_code}:{seed}"
            .encode()).digest()

    def allocate(self, imsi: Imsi) -> Guti:
        self._counter += 1
        digest = hmac.new(
            self._secret, f"{imsi}:{self._counter}".encode(),
            hashlib.sha256).digest()
        m_tmsi = int.from_bytes(digest[:4], "big")
        return Guti(self.plmn, self.mme_group, self.mme_code, m_tmsi)


def redact(identity: Union[Imsi, str, None]) -> str:
    """One-way display form of a permanent identity for logs/evidence.

    Logging the raw IMSI defeats the privacy properties the testbed
    exists to check (I5 linkability); the taint pass treats this helper
    as a sanitizer, so event strings built from it are clean.
    """
    if identity is None:
        return "imsi:<none>"
    digest = hashlib.sha256(f"imsi:{identity}".encode()).hexdigest()
    return f"imsi:{digest[:10]}"


@dataclass
class Subscriber:
    """A provisioned subscriber: identity + permanent key (SIM contents)."""

    imsi: Imsi
    permanent_key: bytes
    guti: Optional[Guti] = None

    def __post_init__(self):
        if len(self.permanent_key) < 16:
            raise ValueError("permanent key must be at least 128 bits")


def make_subscriber(msin: str = "000000001",
                    key_seed: bytes = b"k") -> Subscriber:
    """Convenience factory used by examples and tests."""
    imsi = Imsi("001", "01", msin.zfill(9))
    key = hashlib.sha256(b"permanent:" + key_seed + str(imsi).encode()).digest()
    return Subscriber(imsi=imsi, permanent_key=key[:16])
