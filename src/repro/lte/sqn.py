"""TS 33.102 Annex C sequence-number management (the P1/P2 root cause).

The SQN is a concatenation ``SQN = SEQ || IND``.  The home network
increments both parts when generating a fresh authentication vector; the
USIM keeps an array of ``a = 2**ind_bits`` previously-accepted ``SEQ``
values indexed by ``IND`` and accepts a received ``SQN_j = SEQ_j || IND_j``
iff ``SEQ_j`` is greater than the stored entry at index ``IND_j`` — which
means *out-of-order* (globally stale) values are accepted as long as their
slot has not moved past them.  Annex C 2.2 defines an OPTIONAL freshness
limit ``L`` (reject when ``SEQ_j - SEQ_ms > L`` relative to the highest
accepted value); the paper observes that, being optional and unspecified,
no major vendor implements it — enabling the replay in attack P1.

COTS UEs use ``ind_bits = 5`` (array of 32 slots), so a captured
``authentication_request`` stays acceptable until 31 further vectors have
cycled the array — "a couple of days old" in operational traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: COTS choice observed in the paper's experiments.
DEFAULT_IND_BITS = 5
#: SEQ width; 48-bit SQN total in the standard, irrelevant to behaviour.
DEFAULT_SEQ_BITS = 43


class SqnError(Exception):
    """Raised on malformed sequence numbers."""


@dataclass(frozen=True)
class Sqn:
    """A concrete sequence number ``SEQ || IND``."""

    seq: int
    ind: int
    ind_bits: int = DEFAULT_IND_BITS

    def __post_init__(self):
        if self.seq < 0:
            raise SqnError("SEQ must be non-negative")
        if not 0 <= self.ind < (1 << self.ind_bits):
            raise SqnError(f"IND {self.ind} outside 0..{(1 << self.ind_bits) - 1}")

    @property
    def value(self) -> int:
        """The packed integer ``SEQ || IND``."""
        return (self.seq << self.ind_bits) | self.ind

    @classmethod
    def unpack(cls, value: int, ind_bits: int = DEFAULT_IND_BITS) -> "Sqn":
        if value < 0:
            raise SqnError("SQN must be non-negative")
        mask = (1 << ind_bits) - 1
        return cls(seq=value >> ind_bits, ind=value & mask, ind_bits=ind_bits)

    def __str__(self) -> str:
        return f"SQN(seq={self.seq}, ind={self.ind})"


class SqnGenerator:
    """Home-network side: fresh SQN generation (Annex C 1.2).

    "To generate a fresh SQN, the core network increments both IND and SEQ,
    concatenates them together and sends to the UE."
    """

    def __init__(self, ind_bits: int = DEFAULT_IND_BITS,
                 start_seq: int = 0, start_ind: int = 0):
        self.ind_bits = ind_bits
        self._seq = start_seq
        self._ind = start_ind
        self.generated: List[Sqn] = []

    def next(self) -> Sqn:
        self._seq += 1
        self._ind = (self._ind + 1) % (1 << self.ind_bits)
        sqn = Sqn(self._seq, self._ind, self.ind_bits)
        self.generated.append(sqn)
        return sqn

    @property
    def current(self) -> Tuple[int, int]:
        return self._seq, self._ind


@dataclass
class SqnVerdict:
    """Outcome of a USIM SQN verification."""

    accepted: bool
    reason: str
    #: Highest previously-accepted SQN anywhere in the array, used to build
    #: the AUTS parameter of ``auth_sync_failure`` on rejection.
    resync_seq: int = 0


class UsimSqnArray:
    """USIM side: the SQN array verification scheme (Annex C 2).

    ``freshness_limit`` is the optional parameter ``L``; ``None`` (the
    operator default the paper found everywhere) disables the check and
    leaves the array vulnerable to stale replays.
    """

    def __init__(self, ind_bits: int = DEFAULT_IND_BITS,
                 freshness_limit: Optional[int] = None):
        self.ind_bits = ind_bits
        self.array_size = 1 << ind_bits
        self.freshness_limit = freshness_limit
        self._array: List[int] = [0] * self.array_size
        self.accept_count = 0
        self.reject_count = 0

    @property
    def slots(self) -> Tuple[int, ...]:
        return tuple(self._array)

    @property
    def highest_accepted_seq(self) -> int:
        return max(self._array)

    def peek(self, sqn: Sqn) -> SqnVerdict:
        """Evaluate ``sqn`` without mutating the array."""
        if sqn.ind_bits != self.ind_bits:
            raise SqnError("IND width mismatch between UE and network")
        stored_seq = self._array[sqn.ind]
        if sqn.seq <= stored_seq:
            return SqnVerdict(
                accepted=False,
                reason=(f"SEQ {sqn.seq} <= stored SEQ {stored_seq} at "
                        f"IND {sqn.ind} (synchronisation failure)"),
                resync_seq=self.highest_accepted_seq,
            )
        if (self.freshness_limit is not None
                and sqn.seq < self.highest_accepted_seq - self.freshness_limit):
            return SqnVerdict(
                accepted=False,
                reason=(f"SEQ {sqn.seq} older than limit L="
                        f"{self.freshness_limit} below highest accepted "
                        f"{self.highest_accepted_seq}"),
                resync_seq=self.highest_accepted_seq,
            )
        return SqnVerdict(
            accepted=True,
            reason=f"SEQ {sqn.seq} > stored SEQ {stored_seq} at IND {sqn.ind}",
        )

    def verify(self, sqn: Sqn) -> SqnVerdict:
        """Annex C 2: check and, on acceptance, update the IND slot."""
        verdict = self.peek(sqn)
        if verdict.accepted:
            self._array[sqn.ind] = sqn.seq
            self.accept_count += 1
        else:
            self.reject_count += 1
        return verdict

    def is_globally_fresh(self, sqn: Sqn) -> bool:
        """Strictly greater than every accepted value — what a *strict*
        (non-array) policy would require.  The gap between this and
        :meth:`peek` acceptance is exactly the P1 window."""
        return sqn.seq > self.highest_accepted_seq

    def stale_acceptance_window(self, generator_history: List[Sqn]) -> int:
        """How many already-generated SQNs would still be accepted now.

        The paper: with ``a = 2**5 = 32``, "the USIM accepts 31 previously
        captured stale authentication_request messages".
        """
        return sum(1 for sqn in generator_history if self.peek(sqn).accepted)
