"""NAS message representation, packing and unpacking.

A :class:`NasMessage` is a name (from :mod:`repro.lte.constants`), a field
dictionary, and its security envelope (header type, NAS COUNT, MAC,
optional ciphertext).  Messages serialise to a compact binary TLV format
so the implementations genuinely parse untrusted bytes — the incoming
message handlers run the same unpack → sanity-check → MAC-verify sequence
the paper describes (Section II-D "validation of well-formedness").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from . import constants as c

FieldValue = Union[int, str, bytes]

_MAGIC = 0x4E  # 'N'
_TYPE_INT = 0
_TYPE_STR = 1
_TYPE_BYTES = 2

#: message name <-> wire code
MESSAGE_CODES = {name: index + 1 for index, name in enumerate(c.ALL_MESSAGES)}
CODE_MESSAGES = {code: name for name, code in MESSAGE_CODES.items()}


class MessageError(Exception):
    """Raised for malformed or unparseable NAS messages."""


@dataclass
class NasMessage:
    """One NAS message with its security envelope."""

    name: str
    fields: Dict[str, FieldValue] = field(default_factory=dict)
    sec_header: int = c.SEC_HDR_PLAIN
    count: Optional[int] = None
    mac: Optional[bytes] = None
    #: ciphered payload bytes when sec_header indicates ciphering; the
    #: plaintext ``fields`` are unavailable to parsers until deciphered.
    ciphertext: Optional[bytes] = None

    def __post_init__(self):
        if self.name not in MESSAGE_CODES:
            raise MessageError(f"unknown NAS message {self.name!r}")
        if self.sec_header not in c.SEC_HDR_TYPES:
            raise MessageError(f"bad security header {self.sec_header!r}")

    # ------------------------------------------------------------------
    @property
    def is_protected(self) -> bool:
        return self.sec_header != c.SEC_HDR_PLAIN

    @property
    def is_ciphered(self) -> bool:
        return self.sec_header in (c.SEC_HDR_INTEGRITY_CIPHERED,
                                   c.SEC_HDR_INTEGRITY_CIPHERED_NEW_CTX)

    def get(self, name: str,
            default: Optional[FieldValue] = None) -> Optional[FieldValue]:
        return self.fields.get(name, default)

    # Typed accessors: incoming fields are attacker-controlled, so the
    # handlers coerce defensively and fall back to the default on any
    # type mismatch (a real stack's IE decoder does the same).
    def get_int(self, name: str, default: int = 0) -> int:
        value = self.fields.get(name, default)
        try:
            return int(value)
        except (TypeError, ValueError):
            return default

    def get_str(self, name: str, default: str = "") -> str:
        value = self.fields.get(name, default)
        if isinstance(value, bytes):
            return default
        return str(value)

    def get_bytes(self, name: str, default: bytes = b"") -> bytes:
        value = self.fields.get(name, default)
        return value if isinstance(value, (bytes, bytearray)) else default

    def payload_bytes(self) -> bytes:
        """The inner (plaintext) payload: message code + encoded fields."""
        parts = [struct.pack("!BB", _MAGIC, MESSAGE_CODES[self.name]),
                 struct.pack("!B", len(self.fields))]
        for key in sorted(self.fields):
            value = self.fields[key]
            key_bytes = key.encode()
            if isinstance(value, bool) or isinstance(value, int):
                value_bytes = struct.pack("!q", int(value))
                value_type = _TYPE_INT
            elif isinstance(value, str):
                value_bytes = value.encode()
                value_type = _TYPE_STR
            elif isinstance(value, bytes):
                value_bytes = value
                value_type = _TYPE_BYTES
            else:
                raise MessageError(
                    f"unsupported field type for {key!r}: {type(value)}")
            parts.append(struct.pack("!BB H", value_type, len(key_bytes),
                                     len(value_bytes)))
            parts.append(key_bytes)
            parts.append(value_bytes)
        return b"".join(parts)

    @staticmethod
    def parse_payload(data: bytes) -> Tuple[str, Dict[str, FieldValue]]:
        """Inverse of :meth:`payload_bytes`."""
        if len(data) < 3:
            raise MessageError("payload too short")
        magic, code = struct.unpack_from("!BB", data, 0)
        if magic != _MAGIC:
            raise MessageError(f"bad magic byte {magic:#x}")
        if code not in CODE_MESSAGES:
            raise MessageError(f"unknown message code {code}")
        (count,) = struct.unpack_from("!B", data, 2)
        fields: Dict[str, FieldValue] = {}
        offset = 3
        for _ in range(count):
            if offset + 4 > len(data):
                raise MessageError("truncated field header")
            value_type, key_len, value_len = struct.unpack_from(
                "!BBH", data, offset)
            offset += 4
            if offset + key_len + value_len > len(data):
                raise MessageError("truncated field body")
            try:
                key = data[offset:offset + key_len].decode()
            except UnicodeDecodeError as exc:
                raise MessageError(f"undecodable field key: {exc}") \
                    from exc
            offset += key_len
            raw = data[offset:offset + value_len]
            offset += value_len
            if value_type == _TYPE_INT:
                if len(raw) != 8:
                    raise MessageError("malformed integer field")
                fields[key] = struct.unpack("!q", raw)[0]
            elif value_type == _TYPE_STR:
                try:
                    fields[key] = raw.decode()
                except UnicodeDecodeError as exc:
                    raise MessageError(
                        f"undecodable field value: {exc}") from exc
            elif value_type == _TYPE_BYTES:
                fields[key] = raw
            else:
                raise MessageError(f"unknown field type {value_type}")
        return CODE_MESSAGES[code], fields

    # ------------------------------------------------------------------
    def to_wire(self) -> bytes:
        """Full wire format: security header | count | mac | payload."""
        body = self.ciphertext if self.ciphertext is not None \
            else self.payload_bytes()
        header = struct.pack("!BB", self.sec_header,
                             0 if self.count is None else self.count & 0xFF)
        mac = self.mac or b"\x00" * 8
        if len(mac) != 8:
            raise MessageError("MAC must be 8 bytes on the wire")
        return header + mac + struct.pack("!H", len(body)) + body

    @classmethod
    def from_wire(cls, data: bytes) -> "NasMessage":
        if len(data) < 12:
            raise MessageError("frame too short")
        sec_header, count = struct.unpack_from("!BB", data, 0)
        if sec_header not in c.SEC_HDR_TYPES:
            raise MessageError(f"bad security header {sec_header:#x}")
        mac = data[2:10]
        (body_len,) = struct.unpack_from("!H", data, 10)
        body = data[12:12 + body_len]
        if len(body) != body_len:
            raise MessageError("truncated body")
        ciphered = sec_header in (c.SEC_HDR_INTEGRITY_CIPHERED,
                                  c.SEC_HDR_INTEGRITY_CIPHERED_NEW_CTX)
        if ciphered:
            # Cannot name the message before deciphering; use transport
            # placeholder and stash the ciphertext.
            return cls(name=c.DOWNLINK_NAS_TRANSPORT, fields={},
                       sec_header=sec_header, count=count, mac=mac,
                       ciphertext=body)
        name, fields = cls.parse_payload(body)
        return cls(name=name, fields=fields, sec_header=sec_header,
                   count=count, mac=mac)

    def copy(self) -> "NasMessage":
        return NasMessage(
            name=self.name, fields=dict(self.fields),
            sec_header=self.sec_header, count=self.count, mac=self.mac,
            ciphertext=self.ciphertext,
        )

    def __str__(self) -> str:
        protection = {
            c.SEC_HDR_PLAIN: "plain",
            c.SEC_HDR_INTEGRITY: "int",
            c.SEC_HDR_INTEGRITY_CIPHERED: "int+enc",
            c.SEC_HDR_INTEGRITY_NEW_CTX: "int/new",
            c.SEC_HDR_INTEGRITY_CIPHERED_NEW_CTX: "int+enc/new",
        }[self.sec_header]
        return f"{self.name}[{protection}]{self.fields}"
