"""Home Subscriber Server: subscriber database and authentication vectors.

Holds the permanent keys and the per-subscriber SQN generators (TS 33.102
Annex C network side).  The MME requests authentication vectors from here;
the P1 capture phase works precisely because every ``attach_request`` —
including one from the attacker's own malicious UE — makes the HSS mint a
fresh, valid ``authentication_request`` for the claimed IMSI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .identifiers import Subscriber
from .security import AuthVector, generate_auth_vector
from .sqn import Sqn, SqnGenerator


class HssError(Exception):
    """Raised for unknown subscribers."""


@dataclass
class HssEntry:
    subscriber: Subscriber
    generator: SqnGenerator = field(default_factory=SqnGenerator)
    vectors_issued: int = 0


class Hss:
    """The subscriber database shared by all MME instances."""

    def __init__(self):
        self._entries: Dict[str, HssEntry] = {}

    def provision(self, subscriber: Subscriber) -> None:
        self._entries[str(subscriber.imsi)] = HssEntry(subscriber)

    def subscribers(self) -> List[str]:
        return sorted(self._entries)

    def _entry(self, imsi: str) -> HssEntry:
        try:
            return self._entries[imsi]
        except KeyError:
            raise HssError(f"unknown IMSI {imsi}") from None

    def get_auth_vector(self, imsi: str) -> AuthVector:
        """Mint a fresh authentication vector (increments SEQ and IND)."""
        entry = self._entry(imsi)
        sqn = entry.generator.next()
        entry.vectors_issued += 1
        return generate_auth_vector(entry.subscriber.permanent_key, sqn)

    def resynchronise(self, imsi: str, resync_seq: int) -> None:
        """Handle an auth_sync_failure AUTS: jump SEQ past the UE's view."""
        entry = self._entry(imsi)
        current_seq, current_ind = entry.generator.current
        if resync_seq >= current_seq:
            entry.generator = SqnGenerator(
                ind_bits=entry.generator.ind_bits,
                start_seq=resync_seq, start_ind=current_ind)

    def vector_history(self, imsi: str) -> List[Sqn]:
        """All SQNs ever issued for the subscriber (trace analysis)."""
        return list(self._entry(imsi).generator.generated)

    def permanent_key(self, imsi: str) -> bytes:
        return self._entry(imsi).subscriber.permanent_key
