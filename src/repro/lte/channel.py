"""The radio link between UE and MME as two unidirectional channels.

Mirrors the paper's modelling choice: "we model each communication between
two FSMs ... with two unidirectional channels", each of which may be
adversary controlled.  An :class:`Interceptor` installed on a direction
sees every frame *as bytes* and may pass, drop, modify or substitute it —
the same capabilities the Dolev-Yao adversary has in the formal model, so
testbed attack scripts line up one-to-one with counterexample steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from .. import obs
from .messages import NasMessage

DIR_UPLINK = "uplink"      # UE -> MME
DIR_DOWNLINK = "downlink"  # MME -> UE


class Interceptor(Protocol):
    """In-path adversary hook for one channel direction."""

    def intercept(self, direction: str,
                  frame: bytes) -> Optional[bytes]:
        """Return the frame to deliver (possibly modified), or ``None`` to
        drop it silently."""


@dataclass
class ChannelRecord:
    """One frame observed on the link (the channel's pcap)."""

    direction: str
    frame: bytes
    delivered: bool
    injected: bool = False


class RadioLink:
    """Connects a UE and an MME; delivery is queued and in-order.

    Deliveries are *queued* and pumped after the sending handler returns
    (the event-driven architecture of Section II-D): a handler always runs
    to completion before the next message is dispatched, so instrumented
    logs nest correctly per stimulus.  The pump starts automatically on
    the first top-level send, so callers still see a synchronous API —
    ``ue.power_on()`` returns once the whole exchange has settled.
    """

    def __init__(self):
        self._ue_handler: Optional[Callable[[bytes], None]] = None
        self._mme_handler: Optional[Callable[[bytes], None]] = None
        self.interceptor: Optional[Interceptor] = None
        self.history: List[ChannelRecord] = []
        self._queue: List = []
        self._pumping = False

    # -- endpoint registration ------------------------------------------
    def attach_ue(self, handler: Callable[[bytes], None]) -> None:
        self._ue_handler = handler

    def attach_mme(self, handler: Callable[[bytes], None]) -> None:
        self._mme_handler = handler

    def detach_mme(self) -> Optional[Callable[[bytes], None]]:
        """Unplug the MME (test harness takes over the network side)."""
        handler, self._mme_handler = self._mme_handler, None
        return handler

    def detach_ue(self) -> Optional[Callable[[bytes], None]]:
        handler, self._ue_handler = self._ue_handler, None
        return handler

    # -- transmission ----------------------------------------------------
    def send_uplink(self, frame: bytes) -> bool:
        """UE -> MME. Returns whether the frame was delivered."""
        return self._transmit(DIR_UPLINK, frame, self._mme_handler)

    def send_downlink(self, frame: bytes) -> bool:
        """MME -> UE."""
        return self._transmit(DIR_DOWNLINK, frame, self._ue_handler)

    def _transmit(self, direction: str, frame: bytes,
                  handler: Optional[Callable[[bytes], None]]) -> bool:
        delivered_frame: Optional[bytes] = frame
        if self.interceptor is not None:
            delivered_frame = self.interceptor.intercept(direction, frame)
        handler_present = (self._ue_handler if direction == DIR_DOWNLINK
                           else self._mme_handler) is not None
        delivered = delivered_frame is not None and handler_present
        record = ChannelRecord(direction, frame, delivered=delivered)
        self.history.append(record)
        if not delivered:
            return False
        self._enqueue(direction, delivered_frame)
        return True

    def _enqueue(self, direction: str, frame: bytes) -> None:
        self._queue.append((direction, frame))
        self._pump()

    def _pump(self) -> None:
        """Drain the delivery queue unless a delivery is already running."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._queue:
                direction, frame = self._queue.pop(0)
                handler = (self._ue_handler if direction == DIR_DOWNLINK
                           else self._mme_handler)
                if handler is not None:
                    handler(frame)
        finally:
            self._pumping = False

    # -- adversary-originated traffic ------------------------------------
    def inject_downlink(self, frame: bytes) -> bool:
        """Deliver an adversary-crafted frame to the UE (no interception)."""
        self.history.append(ChannelRecord(DIR_DOWNLINK, frame,
                                          delivered=True, injected=True))
        if self._ue_handler is None:
            return False
        self._enqueue(DIR_DOWNLINK, frame)
        return True

    def inject_uplink(self, frame: bytes) -> bool:
        """Deliver an adversary-crafted frame to the MME."""
        self.history.append(ChannelRecord(DIR_UPLINK, frame,
                                          delivered=True, injected=True))
        if self._mme_handler is None:
            return False
        self._enqueue(DIR_UPLINK, frame)
        return True

    # -- observation -------------------------------------------------------
    def captured(self, direction: Optional[str] = None) -> List[bytes]:
        """All frames that crossed the link (sniffing is always possible)."""
        return [record.frame for record in self.history
                if direction is None or record.direction == direction]

    def captured_messages(self, direction: Optional[str] = None
                          ) -> List[NasMessage]:
        frames = self.captured(direction)
        messages = []
        for frame in frames:
            try:
                messages.append(NasMessage.from_wire(frame))
            except Exception:  # noqa: BLE001 - malformed frames are skipped
                obs.count("channel.malformed_frames")
                continue
        return messages
