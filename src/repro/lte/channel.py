"""The radio link between UE and MME as two unidirectional channels.

Mirrors the paper's modelling choice: "we model each communication between
two FSMs ... with two unidirectional channels", each of which may be
adversary controlled.  An :class:`Interceptor` installed on a direction
sees every frame *as bytes* and may pass, drop, modify or substitute it —
the same capabilities the Dolev-Yao adversary has in the formal model, so
testbed attack scripts line up one-to-one with counterexample steps.

Beyond the adversary, the link can model an *imperfect medium*: a
:class:`ChaosConfig` installed on the link applies a seeded, deterministic
impairment schedule (drop / duplicate / reorder / byte-corrupt / delay)
inside :meth:`RadioLink._transmit`.  Impairments happen *on the wire*,
before interception — the adversary taps the cable, so it sees the frame
as the weather left it.  Every impairment is recorded as provenance on
the :class:`ChannelRecord` history, so two runs with the same seed
produce byte-identical histories (the determinism contract the consensus
extractor in :mod:`repro.extraction.consensus` builds on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from .. import faults, obs
from . import constants as c
from .messages import MessageError, NasMessage

DIR_UPLINK = "uplink"      # UE -> MME
DIR_DOWNLINK = "downlink"  # MME -> UE

#: Impairment provenance tags recorded on :class:`ChannelRecord`.
IMPAIR_DROP = "drop"
IMPAIR_DUPLICATE = "duplicate"
IMPAIR_REORDER = "reorder"
IMPAIR_CORRUPT = "corrupt"
IMPAIR_DELAY = "delay"
IMPAIR_FAULT = "fault"      # targeted drop via the repro.faults site

#: ``repro.faults`` site tripped for every chaos-eligible transmission,
#: keyed ``"<direction>:<message name>"`` — a ``raise`` fault here forces
#: a targeted drop of exactly that message (``nth=0`` drops every copy).
FAULT_SITE_IMPAIR = "channel.impair"


class ChaosConfigError(ValueError):
    """Raised for malformed chaos specifications."""


def corrupt_frame(frame: bytes, position: int, mask: int) -> bytes:
    """XOR one byte of ``frame`` at ``position`` with ``mask``.

    The single-byte corruption primitive shared by the chaos schedule
    (position/mask drawn from the stream RNG) and the fuzzer's
    ``bitflip`` mutation (position/mask carried in the mutation record,
    so artifacts replay byte-for-byte).  Empty frames pass through.
    """
    if not frame:
        return frame
    return (frame[:position] + bytes([frame[position] ^ mask])
            + frame[position + 1:])


class Interceptor(Protocol):
    """In-path adversary hook for one channel direction."""

    def intercept(self, direction: str,
                  frame: bytes) -> Optional[bytes]:
        """Return the frame to deliver (possibly modified), or ``None`` to
        drop it silently."""


@dataclass
class ChannelRecord:
    """One frame observed on the link (the channel's pcap).

    ``frame`` is always the bytes the *sender* put on the air; a
    corrupted delivery keeps the original here and notes ``impairment``.
    """

    direction: str
    frame: bytes
    delivered: bool
    injected: bool = False
    #: Impairment provenance: one of the ``IMPAIR_*`` tags, or ``None``
    #: for an unimpaired transmission.
    impairment: Optional[str] = None


@dataclass(frozen=True)
class ImpairmentRates:
    """Per-direction impairment probabilities (each in ``[0, 1]``).

    The five rates partition a single uniform draw, so at most one
    impairment applies per frame and their sum must stay ``<= 1``.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0

    def __post_init__(self):
        total = 0.0
        for name in ("drop", "duplicate", "reorder", "corrupt", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChaosConfigError(
                    f"impairment rate {name}={value!r} outside [0, 1]")
            total += value
        if total > 1.0 + 1e-9:
            raise ChaosConfigError(
                f"impairment rates sum to {total:.3f} > 1")

    def any(self) -> bool:
        return (self.drop or self.duplicate or self.reorder
                or self.corrupt or self.delay) > 0.0


#: Parse keys accepted by :meth:`ChaosConfig.parse` -> rate field.
_RATE_KEYS = {"drop": "drop", "dup": "duplicate", "duplicate": "duplicate",
              "reorder": "reorder", "corrupt": "corrupt", "delay": "delay"}

#: Default drop rate for :meth:`ChaosConfig.default` — low enough that
#: three consecutive losses of the same supervised message (the only way
#: to outrun a retransmission timer) are vanishingly rare.
DEFAULT_DROP_RATE = 0.05


@dataclass(frozen=True)
class ChaosConfig:
    """A seeded, deterministic radio-link impairment schedule.

    ``messages`` scopes the impairments to a message-name whitelist;
    the default scope is :data:`repro.lte.constants
    .ATTACH_SUPERVISED_DOWNLINK` — the messages whose loss the TS 24.301
    retransmission discipline absorbs, which is what makes the headline
    guarantee (chaos run ≡ clean run at default rates) hold.  ``None``
    means every frame is eligible (``scope=all``), with no absorption
    guarantee.

    Determinism: each ``(seed, stream, direction)`` triple owns an
    independent :class:`random.Random`, and only chaos-eligible frames
    consume randomness — the schedule is a pure function of the eligible
    frame sequence, never of wall-clock time or interleaving.
    """

    uplink: ImpairmentRates = ImpairmentRates()
    downlink: ImpairmentRates = ImpairmentRates()
    seed: int = 0
    #: How many pump rounds a ``delay`` impairment holds a frame for.
    delay_rounds: int = 1
    messages: Optional[Tuple[str, ...]] = field(
        default=c.ATTACH_SUPERVISED_DOWNLINK)

    def __post_init__(self):
        if self.delay_rounds < 1:
            raise ChaosConfigError("delay_rounds must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def default(cls, seed: int = 0) -> "ChaosConfig":
        """The reference schedule: downlink drops at a sub-abort rate,
        scoped to the retransmission-supervised attach messages."""
        return cls(downlink=ImpairmentRates(drop=DEFAULT_DROP_RATE),
                   seed=seed)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosConfig":
        """Parse the CLI form ``key=rate[,key=rate...]``.

        Keys are ``drop/dup/reorder/corrupt/delay``, optionally prefixed
        ``ul.``/``dl.`` (unprefixed applies to both directions); plus
        ``scope=attach|all``, ``delay_rounds=K`` and ``seed=S`` (an
        in-text seed overrides the ``seed`` argument, so
        ``parse(config.describe())`` round-trips without threading the
        seed separately).  The literal text ``default`` yields
        :meth:`default`.  Example::

            drop=0.05,dup=0.02,dl.corrupt=0.01,scope=all
        """
        if text.strip() == "default":
            return cls.default(seed=seed)
        uplink: Dict[str, float] = {}
        downlink: Dict[str, float] = {}
        messages: Optional[Tuple[str, ...]] = c.ATTACH_SUPERVISED_DOWNLINK
        delay_rounds = 1
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ChaosConfigError(
                    f"bad chaos item {item!r}; expected key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ChaosConfigError(
                        f"bad chaos seed {value!r}") from None
                continue
            if key == "scope":
                if value == "all":
                    messages = None
                elif value == "attach":
                    messages = c.ATTACH_SUPERVISED_DOWNLINK
                else:
                    raise ChaosConfigError(
                        f"bad chaos scope {value!r}; one of attach, all")
                continue
            if key == "delay_rounds":
                try:
                    delay_rounds = int(value)
                except ValueError:
                    raise ChaosConfigError(
                        f"bad delay_rounds {value!r}") from None
                continue
            directions = (uplink, downlink)
            if key.startswith("ul."):
                key, directions = key[3:], (uplink,)
            elif key.startswith("dl."):
                key, directions = key[3:], (downlink,)
            rate_field = _RATE_KEYS.get(key)
            if rate_field is None:
                raise ChaosConfigError(
                    f"unknown chaos key {key!r}; one of "
                    f"{sorted(set(_RATE_KEYS))} (+ scope, delay_rounds)")
            try:
                rate = float(value)
            except ValueError:
                raise ChaosConfigError(
                    f"bad chaos rate {value!r} for {key!r}") from None
            for target in directions:
                target[rate_field] = rate
        return cls(uplink=ImpairmentRates(**uplink),
                   downlink=ImpairmentRates(**downlink),
                   seed=seed, delay_rounds=delay_rounds,
                   messages=messages)

    # ------------------------------------------------------------------
    def rates_for(self, direction: str) -> ImpairmentRates:
        return self.uplink if direction == DIR_UPLINK else self.downlink

    def with_seed(self, seed: int) -> "ChaosConfig":
        return replace(self, seed=seed)

    def describe(self) -> str:
        """The canonical spec text; :meth:`parse` inverts it exactly.

        ``parse(config.describe()) == config`` holds for every config
        whose scope is expressible in the spec grammar (``attach`` or
        ``all``); a custom message tuple renders as the informational
        ``scope=<n>msgs``, which parse rejects by design.  Rates use
        ``repr`` so float precision survives the round-trip.
        """
        parts = []
        for direction, rates in (("ul", self.uplink), ("dl", self.downlink)):
            for name in ("drop", "duplicate", "reorder", "corrupt",
                         "delay"):
                value = getattr(rates, name)
                if value:
                    parts.append(f"{direction}.{name}={value!r}")
        if self.delay_rounds != 1:
            parts.append(f"delay_rounds={self.delay_rounds}")
        parts.append(f"seed={self.seed}")
        if self.messages is None:
            parts.append("scope=all")
        elif tuple(self.messages) == c.ATTACH_SUPERVISED_DOWNLINK:
            parts.append("scope=attach")
        else:
            parts.append(f"scope={len(self.messages)}msgs")
        return ",".join(parts)

    def to_dict(self) -> Dict:
        return {
            "uplink": vars(self.uplink).copy(),
            "downlink": vars(self.downlink).copy(),
            "seed": self.seed,
            "delay_rounds": self.delay_rounds,
            "messages": (None if self.messages is None
                         else list(self.messages)),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosConfig":
        messages = payload.get("messages", list(
            c.ATTACH_SUPERVISED_DOWNLINK))
        return cls(
            uplink=ImpairmentRates(**payload.get("uplink", {})),
            downlink=ImpairmentRates(**payload.get("downlink", {})),
            seed=payload.get("seed", 0),
            delay_rounds=payload.get("delay_rounds", 1),
            messages=None if messages is None else tuple(messages),
        )


class RadioLink:
    """Connects a UE and an MME; delivery is queued and in-order.

    Deliveries are *queued* and pumped after the sending handler returns
    (the event-driven architecture of Section II-D): a handler always runs
    to completion before the next message is dispatched, so instrumented
    logs nest correctly per stimulus.  The pump starts automatically on
    the first top-level send, so callers still see a synchronous API —
    ``ue.power_on()`` returns once the whole exchange has settled.

    If a handler raises, the pump clears every queued and held frame
    before re-raising: leftover frames must not deliver inside the *next*
    stimulus's block, where they would corrupt extraction log nesting.
    Abandoned frames are counted as ``channel.aborted_deliveries``.

    ``inject_uplink``/``inject_downlink`` (adversary-originated traffic)
    bypass both the interceptor and the chaos schedule: attack probes
    must land exactly as scripted.
    """

    def __init__(self, chaos: Optional[ChaosConfig] = None,
                 chaos_stream: str = ""):
        self._ue_handler: Optional[Callable[[bytes], None]] = None
        self._mme_handler: Optional[Callable[[bytes], None]] = None
        self.interceptor: Optional[Interceptor] = None
        self.history: List[ChannelRecord] = []
        self._queue: List = []
        self._pumping = False
        self.chaos: Optional[ChaosConfig] = None
        self._chaos_stream = ""
        self._chaos_rng: Dict[str, random.Random] = {}
        #: reorder holds: frames deferred behind the current stimulus.
        self._held: List[Tuple[str, bytes]] = []
        #: delay holds: ``[direction, frame, remaining pump rounds]``.
        self._delayed: List[List] = []
        if chaos is not None:
            self.configure_chaos(chaos, chaos_stream)

    # -- chaos -----------------------------------------------------------
    def configure_chaos(self, chaos: Optional[ChaosConfig],
                        stream: str = "") -> None:
        """Install (or clear) the impairment schedule.

        ``stream`` decorrelates links sharing one seed (the conformance
        runner passes the test-case identifier, so case ordering never
        changes a case's schedule).
        """
        self.chaos = chaos
        self._chaos_stream = stream
        self._chaos_rng = {}
        if chaos is not None:
            for direction in (DIR_UPLINK, DIR_DOWNLINK):
                self._chaos_rng[direction] = random.Random(
                    f"{chaos.seed}|{stream}|{direction}")

    @staticmethod
    def _frame_name(frame: bytes) -> Optional[str]:
        try:
            return NasMessage.from_wire(frame).name
        except MessageError:
            obs.count("channel.malformed_frames")
            return None

    def _chaos_action(self, direction: str,
                      frame: bytes) -> Optional[str]:
        """The impairment (if any) the schedule assigns this frame.

        Only eligible frames consume randomness, so the schedule is a
        deterministic function of the eligible-frame sequence.
        """
        config = self.chaos
        if config is None:
            return None
        rates = config.rates_for(direction)
        eligible = rates.any()
        if eligible and config.messages is not None:
            eligible = self._frame_name(frame) in config.messages
        if not eligible:
            return None
        draw = self._chaos_rng[direction].random()
        edge = 0.0
        for action, rate in ((IMPAIR_DROP, rates.drop),
                             (IMPAIR_DUPLICATE, rates.duplicate),
                             (IMPAIR_REORDER, rates.reorder),
                             (IMPAIR_CORRUPT, rates.corrupt),
                             (IMPAIR_DELAY, rates.delay)):
            edge += rate
            if draw < edge:
                return action
        return None

    def _corrupted(self, direction: str, frame: bytes) -> bytes:
        """Flip one byte, position and XOR mask drawn from the stream."""
        rng = self._chaos_rng[direction]
        position = rng.randrange(len(frame)) if frame else 0
        mask = rng.randrange(1, 256)
        return corrupt_frame(frame, position, mask)

    def _fault_dropped(self, direction: str, frame: bytes) -> bool:
        """``channel.impair`` fault site: a ``raise`` fault = forced drop."""
        if faults.installed() is None:
            return False
        try:
            faults.trip(FAULT_SITE_IMPAIR,
                        key=f"{direction}:{self._frame_name(frame)}")
        except faults.InjectedFault:
            obs.count("channel.chaos.dropped")
            self.history.append(ChannelRecord(
                direction, frame, delivered=False,
                impairment=IMPAIR_FAULT))
            return True
        return False

    # -- endpoint registration ------------------------------------------
    def attach_ue(self, handler: Callable[[bytes], None]) -> None:
        self._ue_handler = handler

    def attach_mme(self, handler: Callable[[bytes], None]) -> None:
        self._mme_handler = handler

    def detach_mme(self) -> Optional[Callable[[bytes], None]]:
        """Unplug the MME (test harness takes over the network side)."""
        handler, self._mme_handler = self._mme_handler, None
        return handler

    def detach_ue(self) -> Optional[Callable[[bytes], None]]:
        handler, self._ue_handler = self._ue_handler, None
        return handler

    # -- transmission ----------------------------------------------------
    def send_uplink(self, frame: bytes) -> bool:
        """UE -> MME. Returns whether the frame was delivered."""
        return self._transmit(DIR_UPLINK, frame, self._mme_handler)

    def send_downlink(self, frame: bytes) -> bool:
        """MME -> UE."""
        return self._transmit(DIR_DOWNLINK, frame, self._ue_handler)

    def _transmit(self, direction: str, frame: bytes,
                  handler: Optional[Callable[[bytes], None]]) -> bool:
        if self._fault_dropped(direction, frame):
            return False
        action = self._chaos_action(direction, frame)
        if action == IMPAIR_DROP:
            obs.count("channel.chaos.dropped")
            self.history.append(ChannelRecord(
                direction, frame, delivered=False, impairment=action))
            return False
        if action == IMPAIR_REORDER:
            # Deferred behind every delivery of the current stimulus:
            # released (in order held) when the pump drains.
            obs.count("channel.chaos.reordered")
            self._held.append((direction, frame))
            self._pump()
            return True
        if action == IMPAIR_DELAY:
            obs.count("channel.chaos.delayed")
            self._delayed.append(
                [direction, frame, self.chaos.delay_rounds])
            return True
        payload = frame
        if action == IMPAIR_CORRUPT:
            obs.count("channel.chaos.corrupted")
            payload = self._corrupted(direction, frame)
        # A duplicated frame's first copy is the genuine transmission;
        # only the extra copy carries the provenance tag.
        first = None if action == IMPAIR_DUPLICATE else action
        delivered = self._deliver(direction, frame, payload,
                                  impairment=first)
        if action == IMPAIR_DUPLICATE:
            obs.count("channel.chaos.duplicated")
            self._deliver(direction, frame, payload,
                          impairment=IMPAIR_DUPLICATE)
        return delivered

    def _deliver(self, direction: str, original: bytes, payload: bytes,
                 impairment: Optional[str] = None) -> bool:
        """Interception + history + queueing for one wire copy."""
        delivered_frame: Optional[bytes] = payload
        if self.interceptor is not None:
            delivered_frame = self.interceptor.intercept(direction,
                                                         payload)
        handler_present = (self._ue_handler if direction == DIR_DOWNLINK
                           else self._mme_handler) is not None
        delivered = delivered_frame is not None and handler_present
        self.history.append(ChannelRecord(direction, original,
                                          delivered=delivered,
                                          impairment=impairment))
        if not delivered:
            return False
        self._enqueue(direction, delivered_frame)
        return True

    def _enqueue(self, direction: str, frame: bytes) -> None:
        self._queue.append((direction, frame))
        self._pump()

    def _release_held(self) -> bool:
        """Deliver reorder-held frames; True if anything was enqueued."""
        held, self._held = self._held, []
        progressed = False
        for direction, frame in held:
            if self._deliver(direction, frame, frame,
                             impairment=IMPAIR_REORDER):
                progressed = True
        return progressed

    def _age_delayed(self) -> bool:
        """One pump round passed: age delay holds, deliver the due ones."""
        if not self._delayed:
            return False
        due, remaining = [], []
        for entry in self._delayed:
            entry[2] -= 1
            (due if entry[2] <= 0 else remaining).append(entry)
        self._delayed = remaining
        progressed = False
        for direction, frame, _ in due:
            if self._deliver(direction, frame, frame,
                             impairment=IMPAIR_DELAY):
                progressed = True
        return progressed

    def _pump(self) -> None:
        """Drain the delivery queue unless a delivery is already running."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                while self._queue:
                    direction, frame = self._queue.pop(0)
                    handler = (self._ue_handler
                               if direction == DIR_DOWNLINK
                               else self._mme_handler)
                    if handler is not None:
                        handler(frame)
                if self._release_held():
                    continue
                if self._age_delayed():
                    continue
                break
        except BaseException:
            abandoned = (len(self._queue) + len(self._held)
                         + len(self._delayed))
            if abandoned:
                obs.count("channel.aborted_deliveries", abandoned)
            self._queue.clear()
            self._held.clear()
            self._delayed.clear()
            raise
        finally:
            self._pumping = False

    # -- adversary-originated traffic ------------------------------------
    def inject_downlink(self, frame: bytes) -> bool:
        """Deliver an adversary-crafted frame to the UE (no interception,
        no chaos — probes land exactly as scripted)."""
        self.history.append(ChannelRecord(DIR_DOWNLINK, frame,
                                          delivered=True, injected=True))
        if self._ue_handler is None:
            return False
        self._enqueue(DIR_DOWNLINK, frame)
        return True

    def inject_uplink(self, frame: bytes) -> bool:
        """Deliver an adversary-crafted frame to the MME."""
        self.history.append(ChannelRecord(DIR_UPLINK, frame,
                                          delivered=True, injected=True))
        if self._mme_handler is None:
            return False
        self._enqueue(DIR_UPLINK, frame)
        return True

    # -- observation -------------------------------------------------------
    def captured(self, direction: Optional[str] = None) -> List[bytes]:
        """All frames that crossed the link (sniffing is always possible)."""
        return [record.frame for record in self.history
                if direction is None or record.direction == direction]

    def captured_messages(self, direction: Optional[str] = None
                          ) -> List[NasMessage]:
        frames = self.captured(direction)
        messages = []
        for frame in frames:
            try:
                messages.append(NasMessage.from_wire(frame))
            except Exception:  # noqa: BLE001 - malformed frames are skipped
                obs.count("channel.malformed_frames")
                continue
        return messages
