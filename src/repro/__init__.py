"""ProChecker — automated security and privacy analysis of 4G LTE protocol
implementations (reproduction of Karim, Hussain & Bertino, ICDCS 2021).

Top-level API::

    from repro import ProChecker
    report = ProChecker("srsue").analyze()
    print(report.format_table())

Package map:

- :mod:`repro.lte` — the 4G LTE NAS substrate (messages, security, SQN,
  UE/MME implementations with the paper's per-stack deviations);
- :mod:`repro.conformance` — functional conformance testing framework;
- :mod:`repro.instrumentation` — C-like and runtime log instrumentors;
- :mod:`repro.extraction` — the Algorithm 1 model extractor;
- :mod:`repro.fsm` — protocol FSMs, refinement (RQ2), DOT serialisation;
- :mod:`repro.threat` — Dolev-Yao model instrumentor (IMP^mu);
- :mod:`repro.mc` — explicit-state LTL model checker (NuXmv stand-in);
- :mod:`repro.cpv` — Dolev-Yao protocol verifier (ProVerif stand-in);
- :mod:`repro.properties` — the 62-property catalog;
- :mod:`repro.obs` — pipeline-wide observability (spans, metrics, sinks);
- :mod:`repro.core` — the CEGAR loop and end-to-end pipeline;
- :mod:`repro.testbed` — simulated SDR testbed + executable attacks;
- :mod:`repro.baselines` — the LTEInspector models (RQ2/RQ3 baseline).
"""

from .core import (AnalysisConfig, AnalysisReport, ProChecker,
                   PropertyResult, Verdict, VerificationEngine,
                   analyze_many, extraction_cache)
from .fsm import FiniteStateMachine, Transition, check_refinement
from .properties import ALL_PROPERTIES, catalog_summary
from .schema import SCHEMA_VERSION, SchemaVersionError

__version__ = "1.2.0"

__all__ = [
    "AnalysisConfig", "AnalysisReport", "ProChecker", "PropertyResult",
    "SCHEMA_VERSION", "SchemaVersionError", "Verdict",
    "VerificationEngine", "analyze_many", "extraction_cache",
    "FiniteStateMachine", "Transition", "check_refinement",
    "ALL_PROPERTIES", "catalog_summary",
    "__version__",
]
