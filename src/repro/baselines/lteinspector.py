"""The LTEInspector baseline models (Hussain et al., NDSS 2018).

The paper compares against — and borrows the core-network side from —
LTEInspector's *manually constructed* NAS models: "we did not have access
to the commercial/closed-sourced implementation of a core network and
thus used the open-source core network's FSM manually constructed by
Hussain et al.".

These machines are deliberately coarse: four states per side, conditions
are bare message names with no data predicates — which is exactly what
the RQ2 refinement comparison measures ProChecker's extracted models
against, and what the Fig. 8 scalability benchmark verifies the common
properties on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..fsm import FiniteStateMachine, NULL_ACTION
from ..lte import constants as c

# LTEInspector state names (lower-case, per the original paper's figures).
UE_DEREGISTERED = "ue_deregistered"
UE_REGISTERED_INITIATED = "ue_registered_initiated"
UE_REGISTERED = "ue_registered"
UE_DEREG_INITIATED = "ue_dereg_initiated"

MME_DEREGISTERED = "mme_deregistered"
MME_COMMON_PROC = "mme_common_procedure_initiated"
MME_REGISTERED = "mme_registered"
MME_DEREG_INITIATED = "mme_dereg_initiated"

#: Mapping of LTEInspector states onto the sub-states ProChecker extracts
#: ("this mapping from states to sub-states is done following the
#: standards"), used by the RQ2 refinement check.
SUBSTATE_MAP: Dict[str, Tuple[str, ...]] = {
    UE_DEREGISTERED: (c.EMM_DEREGISTERED,
                      c.EMM_DEREGISTERED_ATTACH_NEEDED),
    UE_REGISTERED_INITIATED: (
        c.EMM_REGISTERED_INITIATED,
        c.EMM_REGISTERED_INITIATED_AUTHENTICATED,
        c.EMM_REGISTERED_INITIATED_SECURE),
    UE_REGISTERED: (c.EMM_REGISTERED, c.EMM_REGISTERED_NORMAL_SERVICE,
                    c.EMM_SERVICE_REQUEST_INITIATED,
                    c.EMM_TRACKING_AREA_UPDATING_INITIATED),
    UE_DEREG_INITIATED: (c.EMM_DEREGISTERED_INITIATED,),
}


def lteinspector_ue() -> FiniteStateMachine:
    """The hand-built UE model LTE^mu (UE side)."""
    fsm = FiniteStateMachine(name="LTEInspector_UE",
                             initial_state=UE_DEREGISTERED)
    add = fsm.add_transition
    # Attach
    add(UE_DEREGISTERED, UE_REGISTERED_INITIATED,
        ("internal_power_on",), (c.ATTACH_REQUEST,))
    add(UE_REGISTERED_INITIATED, UE_REGISTERED_INITIATED,
        (c.IDENTITY_REQUEST,), (c.IDENTITY_RESPONSE,))
    add(UE_REGISTERED_INITIATED, UE_REGISTERED_INITIATED,
        (c.AUTHENTICATION_REQUEST,), (c.AUTHENTICATION_RESPONSE,))
    # Fig. 7(i)'s example transition: SMC completes the secure setup.
    add(UE_REGISTERED_INITIATED, UE_REGISTERED_INITIATED,
        (c.SECURITY_MODE_COMMAND,), (c.SECURITY_MODE_COMPLETE,))
    add(UE_REGISTERED_INITIATED, UE_REGISTERED,
        (c.ATTACH_ACCEPT,), (c.ATTACH_COMPLETE,))
    add(UE_REGISTERED_INITIATED, UE_DEREGISTERED,
        (c.ATTACH_REJECT,), (NULL_ACTION,))
    add(UE_REGISTERED_INITIATED, UE_DEREGISTERED,
        (c.AUTHENTICATION_REJECT,), (NULL_ACTION,))
    # Registered-state procedures
    add(UE_REGISTERED, UE_REGISTERED,
        (c.AUTHENTICATION_REQUEST,), (c.AUTHENTICATION_RESPONSE,))
    add(UE_REGISTERED, UE_REGISTERED,
        (c.GUTI_REALLOCATION_COMMAND,), (c.GUTI_REALLOCATION_COMPLETE,))
    add(UE_REGISTERED, UE_REGISTERED,
        (c.PAGING,), (c.SERVICE_REQUEST,))
    add(UE_REGISTERED, UE_REGISTERED,
        (c.TAU_ACCEPT,), (c.TAU_COMPLETE,))
    add(UE_REGISTERED, UE_DEREGISTERED,
        (c.TAU_REJECT,), (NULL_ACTION,))
    add(UE_REGISTERED, UE_DEREGISTERED,
        (c.SERVICE_REJECT,), (NULL_ACTION,))
    add(UE_REGISTERED, UE_DEREGISTERED,
        (c.DETACH_REQUEST,), (c.DETACH_ACCEPT,))
    add(UE_REGISTERED, UE_DEREGISTERED,
        (c.ATTACH_REJECT,), (NULL_ACTION,))
    # Fig. 7(ii)'s example transition: UE-initiated detach.
    add(UE_REGISTERED, UE_DEREG_INITIATED,
        ("internal_detach",), (c.DETACH_REQUEST,))
    add(UE_DEREG_INITIATED, UE_DEREGISTERED,
        (c.DETACH_ACCEPT,), (NULL_ACTION,))
    return fsm


def lteinspector_mme() -> FiniteStateMachine:
    """The hand-built core-network model (MME side).

    This is the machine ProChecker pairs with every extracted UE model
    ("we were interested in identifying vulnerabilities on the UE side").
    """
    fsm = FiniteStateMachine(name="LTEInspector_MME",
                             initial_state=MME_DEREGISTERED)
    add = fsm.add_transition
    add(MME_DEREGISTERED, MME_COMMON_PROC,
        (c.ATTACH_REQUEST,), (c.AUTHENTICATION_REQUEST,))
    add(MME_COMMON_PROC, MME_COMMON_PROC,
        (c.IDENTITY_RESPONSE,), (c.AUTHENTICATION_REQUEST,))
    add(MME_COMMON_PROC, MME_COMMON_PROC,
        (c.AUTHENTICATION_RESPONSE,), (c.SECURITY_MODE_COMMAND,))
    add(MME_COMMON_PROC, MME_COMMON_PROC,
        (c.AUTH_SYNC_FAILURE,), (c.AUTHENTICATION_REQUEST,))
    add(MME_COMMON_PROC, MME_DEREGISTERED,
        (c.AUTH_MAC_FAILURE,), (c.ATTACH_REJECT,))
    add(MME_COMMON_PROC, MME_COMMON_PROC,
        (c.SECURITY_MODE_COMPLETE,), (c.ATTACH_ACCEPT,))
    add(MME_COMMON_PROC, MME_REGISTERED,
        (c.ATTACH_COMPLETE,), (NULL_ACTION,))
    # Registered-state procedures
    add(MME_REGISTERED, MME_REGISTERED,
        ("internal_guti_reallocation",), (c.GUTI_REALLOCATION_COMMAND,))
    add(MME_REGISTERED, MME_REGISTERED,
        (c.GUTI_REALLOCATION_COMPLETE,), (NULL_ACTION,))
    add(MME_REGISTERED, MME_REGISTERED,
        ("internal_paging",), (c.PAGING,))
    add(MME_REGISTERED, MME_REGISTERED,
        (c.SERVICE_REQUEST,), (NULL_ACTION,))
    add(MME_REGISTERED, MME_REGISTERED,
        (c.TAU_REQUEST,), (c.TAU_ACCEPT,))
    add(MME_REGISTERED, MME_REGISTERED,
        (c.TAU_COMPLETE,), (NULL_ACTION,))
    add(MME_REGISTERED, MME_COMMON_PROC,
        ("internal_reauthentication",), (c.AUTHENTICATION_REQUEST,))
    add(MME_REGISTERED, MME_DEREGISTERED,
        (c.DETACH_REQUEST,), (c.DETACH_ACCEPT,))
    add(MME_REGISTERED, MME_DEREG_INITIATED,
        ("internal_detach",), (c.DETACH_REQUEST,))
    add(MME_DEREG_INITIATED, MME_DEREGISTERED,
        (c.DETACH_ACCEPT,), (NULL_ACTION,))
    return fsm
