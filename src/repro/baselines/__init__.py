"""Baselines from prior work: LTEInspector models (NDSS 2018) and a
black-box active-automata-learning (L*) extractor for comparison."""

from .lstar import (LStarLearner, LearningStats, LteUeSUL,
                    MealyMachine, learn_ue_model)
from .lteinspector import (SUBSTATE_MAP, lteinspector_mme, lteinspector_ue,
                           MME_COMMON_PROC, MME_DEREGISTERED,
                           MME_DEREG_INITIATED, MME_REGISTERED,
                           UE_DEREGISTERED, UE_DEREG_INITIATED,
                           UE_REGISTERED, UE_REGISTERED_INITIATED)

__all__ = [
    "LStarLearner", "LearningStats", "LteUeSUL", "MealyMachine",
    "learn_ue_model",
    "SUBSTATE_MAP", "lteinspector_mme", "lteinspector_ue",
    "MME_COMMON_PROC", "MME_DEREGISTERED", "MME_DEREG_INITIATED",
    "MME_REGISTERED", "UE_DEREGISTERED", "UE_DEREG_INITIATED",
    "UE_REGISTERED", "UE_REGISTERED_INITIATED",
]
