"""Active automata learning (L*) baseline — the paper's rejected alternative.

Related work (Section VIII): "in a black-box setting active-learning has
been used to extract the FSM of a system. However, the extracted FSM does
not have a proper indication of states and in our white-box setup we have
a lot more information to utilize"; such approaches are "prohibitively
expensive as they require a significantly high time and number of
queries".

This module implements that alternative — Angluin-style L* adapted to
Mealy machines (the de Ruiter & Poll protocol-learning setting) — so the
claim is measurable: the learner interrogates a UE implementation through
a black-box test harness (reset + abstract input symbols, observing the
response message type) and infers a Mealy machine.  The comparison
benchmark contrasts its query cost and the semantic poverty of its output
(opaque state numbers, no data predicates) with ProChecker's extraction
from one instrumented conformance run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lte import constants as c
from ..lte.channel import RadioLink
from ..lte.hss import Hss
from ..lte.identifiers import make_subscriber
from ..lte.implementations import REGISTRY
from ..lte.messages import NasMessage
from ..lte.security import DIR_DOWNLINK, SecurityContext
from ..lte.timers import SimClock

NO_OUTPUT = "-"


# ---------------------------------------------------------------------------
# The system under learning: a black-box UE behind a test harness
# ---------------------------------------------------------------------------
class LteUeSUL:
    """Black-box access to a UE implementation.

    The harness plays the network side like a protocol-learning mapper:
    it owns the session crypto (it mints authentication vectors and
    derives the NAS context when the UE completes authentication) so that
    abstract symbols such as ``smc_valid`` can be concretised — exactly
    the setup of the TLS/SSH learning papers the paper cites.
    """

    #: the abstract input alphabet
    ALPHABET = (
        "power_on",
        "identity_request",
        "auth_request_fresh",
        "auth_request_bad_mac",
        "smc_valid",
        "attach_accept_valid",
        "attach_reject",
        "paging_matching",
        "detach_request_protected",
    )

    def __init__(self, implementation: str = "reference"):
        self.ue_class = REGISTRY[implementation]
        self.resets = 0
        self.symbols_sent = 0
        self.reset()

    # -- SUL interface -----------------------------------------------------
    def reset(self) -> None:
        self.resets += 1
        self.clock = SimClock()
        self.link = RadioLink()
        self.subscriber = make_subscriber("000000001")
        self.hss = Hss()
        self.hss.provision(self.subscriber)
        self.ue = self.ue_class(self.subscriber, self.link,
                                clock=self.clock)
        self._context: Optional[SecurityContext] = None
        self._pending_vector = None
        self._mark = 0

    def step(self, symbol: str) -> str:
        """Apply one abstract input; return the UE's response type."""
        self.symbols_sent += 1
        self._mark = len(self.link.history)
        handler = getattr(self, "_input_" + symbol, None)
        if handler is None:
            raise ValueError(f"unknown input symbol {symbol!r}")
        handler()
        return self._response()

    def _response(self) -> str:
        responses = []
        for record in self.link.history[self._mark:]:
            if record.direction != "uplink":
                continue
            try:
                responses.append(NasMessage.from_wire(record.frame).name)
            except Exception:  # noqa: BLE001
                responses.append("garbage")
        # The harness observes the UE's full reaction; multi-message
        # reactions concatenate (rare: only attach bursts).
        return "+".join(responses) if responses else NO_OUTPUT

    # -- concrete input mapping ---------------------------------------------
    def _send_plain(self, name: str, **fields) -> None:
        message = NasMessage(name=name, fields=fields)
        self.link.inject_downlink(message.to_wire())

    def _send_protected(self, name: str, **fields) -> None:
        message = NasMessage(name=name, fields=fields)
        if self._context is None:
            # no context: send with a garbage MAC, as a tester would
            message.sec_header = c.SEC_HDR_INTEGRITY
            message.mac = b"\x00" * 8
            message.count = 0
        else:
            body = message.payload_bytes()
            _, tag, count = self._context.protect(body, DIR_DOWNLINK,
                                                  cipher=False)
            message.sec_header = c.SEC_HDR_INTEGRITY
            message.mac = tag
            message.count = count
        self.link.inject_downlink(message.to_wire())

    def _input_power_on(self) -> None:
        self.ue.power_on()

    def _input_identity_request(self) -> None:
        self._send_plain(c.IDENTITY_REQUEST, identity_type="imsi")

    def _input_auth_request_fresh(self) -> None:
        vector = self.hss.get_auth_vector(str(self.subscriber.imsi))
        self._pending_vector = vector
        self._send_plain(c.AUTHENTICATION_REQUEST,
                         rand=vector.rand,
                         sqn_seq=vector.autn_sqn.seq,
                         sqn_ind=vector.autn_sqn.ind,
                         autn_mac=vector.autn_mac)
        if c.AUTHENTICATION_RESPONSE in self._response():
            # the UE answered: the session keys are now established on
            # the harness side too (the mapper's crypto state)
            self._context = SecurityContext(kasme=vector.kasme)

    def _input_auth_request_bad_mac(self) -> None:
        self._send_plain(c.AUTHENTICATION_REQUEST,
                         rand=b"\x01" * 16, sqn_seq=9, sqn_ind=9,
                         autn_mac=b"\x00" * 8)

    def _input_smc_valid(self) -> None:
        self._send_protected(c.SECURITY_MODE_COMMAND,
                             selected_eia="eia1", selected_eea="eea0")

    def _input_attach_accept_valid(self) -> None:
        self._send_protected(c.ATTACH_ACCEPT,
                             guti="00101-0001-01-0000c0de")

    def _input_attach_reject(self) -> None:
        self._send_plain(c.ATTACH_REJECT, cause=c.CAUSE_EPS_NOT_ALLOWED)

    def _input_paging_matching(self) -> None:
        paging_id = str(self.ue.current_guti or self.subscriber.imsi)
        self._send_plain(c.PAGING, paging_id=paging_id)

    def _input_detach_request_protected(self) -> None:
        self._send_protected(c.DETACH_REQUEST, reattach=0)


# ---------------------------------------------------------------------------
# Mealy-machine L*
# ---------------------------------------------------------------------------
@dataclass
class MealyMachine:
    """The learner's hypothesis: opaque numbered states."""

    initial: int
    transitions: Dict[Tuple[int, str], Tuple[int, str]]

    @property
    def states(self) -> List[int]:
        found = {self.initial}
        for (source, _symbol), (target, _out) in self.transitions.items():
            found.add(source)
            found.add(target)
        return sorted(found)

    def run(self, word: Sequence[str]) -> List[str]:
        state = self.initial
        outputs = []
        for symbol in word:
            state, output = self.transitions[(state, symbol)]
            outputs.append(output)
        return outputs


@dataclass
class LearningStats:
    membership_queries: int = 0
    equivalence_tests: int = 0
    resets: int = 0
    symbols: int = 0
    rounds: int = 0


class LStarLearner:
    """Angluin's L* for Mealy machines over a resettable SUL."""

    def __init__(self, sul: LteUeSUL,
                 alphabet: Optional[Sequence[str]] = None):
        self.sul = sul
        self.alphabet = tuple(alphabet or sul.ALPHABET)
        self.prefixes: List[Tuple[str, ...]] = [()]
        self.suffixes: List[Tuple[str, ...]] = [
            (symbol,) for symbol in self.alphabet]
        self.table: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], str] = {}
        self.stats = LearningStats()

    # -- queries ------------------------------------------------------------
    def _output(self, word: Tuple[str, ...]) -> str:
        """The SUL's output for the *last* symbol of ``word``."""
        self.sul.reset()
        result = NO_OUTPUT
        for symbol in word:
            result = self.sul.step(symbol)
        self.stats.membership_queries += 1
        return result

    def _cell(self, prefix: Tuple[str, ...],
              suffix: Tuple[str, ...]) -> str:
        key = (prefix, suffix)
        if key not in self.table:
            self.table[key] = self._output(prefix + suffix)
        return self.table[key]

    def _row(self, prefix: Tuple[str, ...]) -> Tuple[str, ...]:
        return tuple(self._cell(prefix, suffix)
                     for suffix in self.suffixes)

    # -- table maintenance ----------------------------------------------------
    def _close(self) -> bool:
        """Ensure every one-step extension's row has a representative."""
        rows = {self._row(prefix) for prefix in self.prefixes}
        for prefix in list(self.prefixes):
            for symbol in self.alphabet:
                extension = prefix + (symbol,)
                if self._row(extension) not in rows:
                    self.prefixes.append(extension)
                    return False
        return True

    def _hypothesis(self) -> MealyMachine:
        representatives: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
        for prefix in self.prefixes:
            representatives.setdefault(self._row(prefix), prefix)
        state_ids = {row: index for index, row
                     in enumerate(representatives)}
        transitions: Dict[Tuple[int, str], Tuple[int, str]] = {}
        for row, prefix in representatives.items():
            source = state_ids[row]
            for symbol in self.alphabet:
                target_row = self._row(prefix + (symbol,))
                output = self._cell(prefix, (symbol,))
                transitions[(source, symbol)] = (state_ids[target_row],
                                                 output)
        initial = state_ids[self._row(())]
        return MealyMachine(initial, transitions)

    # -- equivalence oracle ----------------------------------------------------
    def _find_counterexample(self, hypothesis: MealyMachine,
                             depth: int = 4) -> Optional[Tuple[str, ...]]:
        """Bounded-exhaustive conformance testing up to ``depth``."""
        for length in range(1, depth + 1):
            for word in itertools.product(self.alphabet, repeat=length):
                self.stats.equivalence_tests += 1
                self.sul.reset()
                actual = [self.sul.step(symbol) for symbol in word]
                if hypothesis.run(word) != actual:
                    return tuple(word)
        return None

    def _handle_counterexample(self, word: Tuple[str, ...]) -> None:
        """Add all suffixes of the counterexample (classic L*M)."""
        for start in range(len(word)):
            suffix = word[start:]
            if suffix not in self.suffixes:
                self.suffixes.append(suffix)

    # -- main loop ---------------------------------------------------------------
    def learn(self, max_rounds: int = 10,
              equivalence_depth: int = 3) -> MealyMachine:
        for _ in range(max_rounds):
            self.stats.rounds += 1
            while not self._close():
                pass
            hypothesis = self._hypothesis()
            counterexample = self._find_counterexample(
                hypothesis, depth=equivalence_depth)
            if counterexample is None:
                break
            self._handle_counterexample(counterexample)
        self.stats.resets = self.sul.resets
        self.stats.symbols = self.sul.symbols_sent
        return self._hypothesis()


def learn_ue_model(implementation: str = "reference",
                   max_rounds: int = 10,
                   equivalence_depth: int = 3
                   ) -> Tuple[MealyMachine, LearningStats]:
    """Learn a UE's Mealy machine black-box; returns (model, cost)."""
    sul = LteUeSUL(implementation)
    learner = LStarLearner(sul)
    machine = learner.learn(max_rounds=max_rounds,
                            equivalence_depth=equivalence_depth)
    return machine, learner.stats
