"""The ``/v1`` HTTP JSON API (stdlib-only, no framework).

Routes — every response body is a ``schema_version``-stamped JSON
object (the contract is documented in ``docs/api.md``):

- ``POST /v1/jobs`` — submit an ``AnalysisConfig`` wire payload, or a
  fuzz-campaign payload (``{"type": "fuzz", "implementation": ...}``);
  ``202`` when queued, ``200`` when served from the result store
  (fuzz campaigns are store-exempt, so they always queue);
- ``GET /v1/jobs`` — list jobs (``?status=…&implementation=…``);
- ``GET /v1/jobs/{id}`` — one job record + live progress (a finished
  fuzz job carries its campaign summary under ``result``);
- ``GET /v1/reports/{digest}`` — a stored analysis report;
- ``GET /v1/health`` — *liveness*: always ``200`` while the process
  answers; the body carries ``ready``/``draining`` and the
  worker/queue/store/journal health block;
- ``GET /v1/health/ready`` — *readiness*: ``200`` only when the
  service accepts submissions, ``503`` while draining or stopped
  (orchestrators route traffic on this split: a draining instance is
  alive but must receive no new work).

Errors are JSON too: ``{"error": ..., "schema_version": ...}`` with
``400`` for malformed payloads (bad JSON, unknown wire major, unknown
implementation, uncacheable config), ``404`` for unknown routes, ids
and digests, ``405`` for unsupported methods, ``429`` +
``Retry-After`` when admission control rejects a submission over the
``--max-queue`` bound, ``503`` + ``Retry-After`` while draining, and
``500`` for anything unexpected (the handler never lets an exception
escape to a hung connection).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import schema
from ..core.engine import EngineError
from ..fuzz import FuzzConfigError
from ..store import StoreError
from .jobs import JobStatus
from .service import (AnalysisService, QueueFullError, ServiceDrainingError,
                      ServiceError)

#: Largest accepted request body (a config payload is tiny; anything
#: bigger is a client error or abuse).
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """One HTTP front end bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: AnalysisService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, ServiceHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:            # pragma: no cover - verbose
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(schema.stamp(dict(payload)), sort_keys=True,
                          default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _read_body(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error(400, "request body required (JSON object, "
                                  f"<= {MAX_BODY_BYTES} bytes)")
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error(400, f"unparseable JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error(400, "body must be a JSON object")
            return None
        return payload

    @staticmethod
    def _retry_after(seconds: float) -> Dict[str, str]:
        # Retry-After is delta-seconds; round up so 0.3s never becomes
        # an immediate (0s) retry storm.
        return {"Retry-After": str(max(1, int(-(-seconds // 1))))}

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_POST(self) -> None:   # noqa: N802 - http.server API
        path = urlparse(self.path).path.rstrip("/")
        if path != "/v1/jobs":
            self._send_error(404, f"no such route: POST {path}")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            record = self.server.service.submit(payload)
        except QueueFullError as exc:
            self._send_error(
                429, str(exc),
                headers=self._retry_after(exc.retry_after_seconds))
            return
        except ServiceDrainingError as exc:
            self._send_error(
                503, str(exc),
                headers=self._retry_after(exc.retry_after_seconds))
            return
        except (schema.SchemaVersionError, EngineError, StoreError,
                ServiceError, FuzzConfigError, ValueError) as exc:
            self._send_error(400, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - answer, don't hang up
            self._send_error(500, f"internal error: {exc}")
            return
        # A submit-time store hit is already complete: 200.  A queued
        # job is accepted-but-pending: 202, poll /v1/jobs/{id}.
        self._send_json(200 if record.store_hit else 202,
                        record.to_dict())

    def do_GET(self) -> None:    # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["v1", "health"]:
            # Liveness: a process that can build this body is alive.
            self._send_json(200, self.server.service.stats())
        elif parts == ["v1", "health", "ready"]:
            self._get_readiness()
        elif parts == ["v1", "jobs"]:
            self._list_jobs(parse_qs(parsed.query))
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2])
        elif len(parts) == 3 and parts[:2] == ["v1", "reports"]:
            self._get_report(parts[2])
        else:
            self._send_error(404, f"no such route: GET {parsed.path}")

    def _get_readiness(self) -> None:
        service = self.server.service
        body = {"live": True, "ready": service.ready,
                "draining": service.draining}
        if service.ready:
            self._send_json(200, body)
        else:
            self._send_json(503, body, headers=self._retry_after(5.0))

    def _list_jobs(self, query: Dict) -> None:
        status = None
        raw_status = (query.get("status") or [None])[0]
        if raw_status is not None:
            try:
                status = JobStatus(raw_status)
            except ValueError:
                self._send_error(
                    400, f"unknown status {raw_status!r}; one of "
                         f"{[s.value for s in JobStatus]}")
                return
        implementation = (query.get("implementation") or [None])[0]
        records = self.server.service.jobs(status, implementation)
        self._send_json(200, {
            "jobs": [record.to_dict() for record in records],
            "count": len(records),
        })

    def _get_job(self, job_id: str) -> None:
        try:
            record = self.server.service.job(job_id)
        except KeyError:
            self._send_error(404, f"unknown job {job_id!r}")
            return
        payload = record.to_dict()
        payload["progress"] = self.server.service.progress(job_id)
        self._send_json(200, payload)

    def _get_report(self, digest: str) -> None:
        try:
            report = self.server.service.report(digest)
        except StoreError as exc:
            self._send_error(400, str(exc))
            return
        if report is None:
            self._send_error(404, f"no report stored under {digest!r}")
            return
        self._send_json(200, {"digest": digest, "report": report})


def create_server(host: str, port: int, service: AnalysisService,
                  quiet: bool = True) -> ServiceHTTPServer:
    """Bind the API (``port=0`` picks an ephemeral port, see ``.port``)."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)
