"""Write-ahead job journal: the service's crash-recovery log.

The scheduler (:mod:`repro.serve.service`) is an in-memory queue; this
module is what makes it *durable*.  Every job lifecycle transition is
appended to one JSONL file **before** the transition takes effect:

- ``submit`` — the full job payload (config wire form, digest, kind,
  deadline), written before the job is queued;
- ``start``  — written by the worker before the pipeline runs;
- ``finish`` — the terminal status (``done`` / ``failed`` /
  ``timeout``), written when the record is finalised.

A restarted ``repro serve --journal DIR`` replays the file: every job
with a ``submit`` but no terminal ``finish`` is *pending* — it was
queued or running when the process died — and is re-queued in original
submission order (deterministic recovery).  Jobs whose digest is
already in the result store complete as O(1) store hits during replay;
jobs that were running at the crash re-run cold (the pipeline is
side-effect free until the store write, so a re-run is safe).

Durability idioms mirror :mod:`repro.store`: appends are
``flush + fsync`` so a journaled transition survives the process;
rotation (compaction to only-pending ``submit`` records) writes a temp
file and ``os.replace``\\ s it atomically; a corrupted tail — the
half-written last line a SIGKILL leaves behind — is *quarantined as a
truncate*: the undecodable suffix is moved to ``DIR/quarantine/`` and
the journal is cut back to the longest clean prefix instead of taking
the service down.

``append`` is a :func:`repro.faults.trip` site (``journal.append``,
keyed by the event name) so journal-write failures are exercised under
deterministic fault injection: a failing append fails the *job*, never
the worker or the service.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .. import faults, obs, schema

#: Lifecycle events a journal line may carry.
EVENT_SUBMIT = "submit"
EVENT_START = "start"
EVENT_FINISH = "finish"
EVENTS = (EVENT_SUBMIT, EVENT_START, EVENT_FINISH)

#: Terminal statuses: a ``finish`` carrying one of these closes the job.
TERMINAL_STATUSES = ("done", "failed", "timeout")


class JournalError(Exception):
    """Raised for malformed journal operations (not for corrupt files —
    those are quarantined and truncated, never raised)."""


@dataclass
class JournalReplay:
    """What :meth:`JobJournal.replay` recovered from disk."""

    #: ``submit`` entries with no terminal ``finish``, submission order
    pending: List[Dict] = field(default_factory=list)
    #: job ids that reached a terminal status before the restart
    finished: List[str] = field(default_factory=list)
    #: highest numeric job id seen (0 when the journal was empty) —
    #: the registry's id counter must advance past it so replayed and
    #: fresh jobs never collide
    max_job_number: int = 0
    #: total well-formed lines read
    entries_read: int = 0
    #: bytes of corrupted tail quarantined (0 = the file was clean)
    truncated_bytes: int = 0


class JobJournal:
    """Append-only JSONL write-ahead log for service jobs."""

    FILENAME = "journal.jsonl"
    QUARANTINE = "quarantine"

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, event: str, job_id: str, **fields) -> None:
        """Durably append one lifecycle transition.

        The ``journal.append`` fault site (keyed by ``event``) fires
        *before* the write, modelling a full disk or a yanked volume;
        callers treat a raising append as "this transition did not
        happen".
        """
        if event not in EVENTS:
            raise JournalError(f"unknown journal event {event!r}; "
                               f"one of {EVENTS}")
        faults.trip("journal.append", key=event)
        entry = schema.stamp({"event": event, "job_id": job_id, **fields})
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"),
                          default=str)
        with self._lock:
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        obs.count("serve.journal_appends")

    def append_submit(self, record) -> None:
        """Journal a submission (call before queueing the record)."""
        self.append(
            EVENT_SUBMIT, record.job_id,
            digest=record.digest, kind=record.kind,
            implementation=record.implementation,
            payload=dict(record.payload),
            deadline_seconds=record.deadline_seconds,
            submitted_at=record.submitted_at,
        )

    def append_start(self, record) -> None:
        self.append(EVENT_START, record.job_id, worker=record.worker)

    def append_finish(self, record) -> None:
        self.append(EVENT_FINISH, record.job_id,
                    status=record.status.value,
                    store_hit=record.store_hit, error=record.error)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Reconstruct the pending-job set from the journal file.

        Tolerates the file not existing (fresh start) and a corrupted
        tail (quarantine-as-truncate, ``serve.journal_truncated_tails``
        counted).  A ``start`` without a ``finish`` is still *pending*:
        the job was running at the crash and must re-run.
        """
        replay = JournalReplay()
        try:
            raw = self.path.read_bytes()
        except OSError:
            return replay
        clean_bytes = 0
        submits: Dict[str, Dict] = {}
        order: List[str] = []
        closed: List[str] = []
        for line in raw.split(b"\n"):
            candidate = clean_bytes + len(line) + 1
            if not line:
                if candidate <= len(raw):
                    clean_bytes = candidate
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("journal line is not an object")
                schema.check(entry, "journal entry")
                event = entry.get("event")
                job_id = entry.get("job_id")
                if event not in EVENTS or not job_id:
                    raise ValueError(f"malformed journal entry: {entry}")
            except (ValueError, schema.SchemaVersionError):
                # Corrupted (usually half-written) suffix: everything
                # from this line on is untrustworthy.  Truncate to the
                # clean prefix and quarantine the rest.
                self._truncate_tail(raw, clean_bytes)
                replay.truncated_bytes = len(raw) - clean_bytes
                break
            clean_bytes = candidate
            replay.entries_read += 1
            replay.max_job_number = max(replay.max_job_number,
                                        _job_number(job_id))
            if event == EVENT_SUBMIT:
                if job_id not in submits:
                    order.append(job_id)
                submits[job_id] = entry
            elif event == EVENT_FINISH \
                    and entry.get("status") in TERMINAL_STATUSES:
                closed.append(job_id)
        for job_id in closed:
            submits.pop(job_id, None)
        replay.finished = closed
        replay.pending = [submits[job_id] for job_id in order
                          if job_id in submits]
        if replay.pending:
            obs.count("serve.journal_replayed", len(replay.pending))
        return replay

    def _truncate_tail(self, raw: bytes, clean_bytes: int) -> None:
        quarantine = self.root / self.QUARANTINE
        quarantine.mkdir(parents=True, exist_ok=True)
        index = sum(1 for _ in quarantine.iterdir())
        target = quarantine / f"tail-{index:03d}.bin"
        target.write_bytes(raw[clean_bytes:])
        with self._lock:
            with open(self.path, "r+b") as handle:
                handle.truncate(clean_bytes)
        obs.count("serve.journal_truncated_tails")

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def rotate(self, pending: List[Dict]) -> None:
        """Atomically compact the journal to the given ``submit`` rows.

        Called after a replay: the finished-job history has served its
        purpose, so the new journal holds exactly the still-pending
        submissions (their ``start``/``finish`` lines will be appended
        as they re-execute).  Written temp-file-then-``os.replace`` so
        a crash mid-rotation leaves the old journal intact.
        """
        lines = []
        for entry in pending:
            if entry.get("event") != EVENT_SUBMIT:
                raise JournalError("rotate takes submit entries only, "
                                   f"got {entry.get('event')!r}")
            lines.append(json.dumps(entry, sort_keys=True,
                                    separators=(",", ":"), default=str))
        text = "".join(line + "\n" for line in lines)
        with self._lock:
            tmp = self.path.with_suffix(".tmp")
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        obs.count("serve.journal_rotations")

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Health-block summary: journal size and quarantine count."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        quarantine = self.root / self.QUARANTINE
        quarantined = (sum(1 for _ in quarantine.iterdir())
                       if quarantine.is_dir() else 0)
        return {"path": str(self.path), "bytes": size,
                "quarantined_tails": quarantined}


def _job_number(job_id: str) -> int:
    """``"j000042"`` → 42 (0 for ids not in the registry's format)."""
    digits = job_id.lstrip("j")
    return int(digits) if digits.isdigit() else 0


__all__ = [
    "EVENTS", "EVENT_FINISH", "EVENT_START", "EVENT_SUBMIT", "JobJournal",
    "JournalError", "JournalReplay", "TERMINAL_STATUSES",
]
