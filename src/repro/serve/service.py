"""The scheduler: a durable job queue drained by a supervised worker fleet.

The split mirrors Klever's bridge/scheduler architecture: the HTTP layer
(:mod:`repro.serve.http`) only translates requests, this module owns the
queue, the worker fleet, the result-store short-circuit and — since the
resilience layer — the write-ahead journal, the drain lifecycle, the
deadline watchdog and queue admission control.

Every job travels one of two paths:

- **store hit** — the job's content address is already filed: the record
  is marked ``DONE`` *at submission time*, with ``store_hit=True`` and an
  empty per-job counter delta.  No extraction, no model checking — the
  acceptance criterion "second identical submission consumes zero
  ``engine.*``/``mc.*`` work" is checked against exactly this emptiness.
- **cold run** — a worker thread dequeues the job, re-checks the store
  (an identical job submitted while the first was still running
  coalesces into a hit here), then runs the full pipeline via
  :meth:`ProChecker.from_config(...).analyze()
  <repro.core.prochecker.ProChecker.analyze>` — inheriting the engine's
  process-pool fan-out, retry/timeout resilience and crash isolation —
  and files the finished report.

A third path exists for ``"type": "fuzz"`` payloads: a long-running
fuzz campaign (:mod:`repro.fuzz`) executed on a worker thread.
Campaigns are **store-exempt** — they always run cold; their
``FuzzResult.summary()`` is filed inline on the job record.

Resilience layer:

- **journal** (:mod:`repro.serve.journal`) — with a journal attached,
  every submit/start/finish is logged write-ahead; a restarted service
  replays unfinished jobs deterministically (store hits stay O(1),
  running-at-crash jobs re-run cold).  A failing *start* append fails
  the job, never the worker; a failing *finish* append is counted and
  tolerated — the job's report is already in the store, so a replay
  resolves it as a hit (the journal self-heals through the store).
- **drain** — :meth:`AnalysisService.drain` stops admission and
  dequeueing; in-flight jobs finish, queued jobs stay ``QUEUED`` (and
  journaled) for the next incarnation.  ``repro serve`` wires SIGTERM
  and SIGINT to exactly this.
- **deadlines + watchdog** (:mod:`repro.serve.watchdog`) — a running
  job past its ``deadline_seconds`` is marked ``TIMEOUT``; its hung
  worker is abandoned and a replacement spawned
  (``serve.workers_respawned``), so capacity never decays.
- **backpressure** — with ``max_queue`` set, submissions beyond the
  queue bound raise :class:`QueueFullError`, which the HTTP layer maps
  to ``429`` + ``Retry-After``; :class:`~repro.serve.client.ServeClient`
  retries those with jittered exponential backoff.

Per-job telemetry: the finished report's
``stats.runtime["metrics"]["counters"]`` delta (which includes the
PR 3 resilience counters ``engine.group_*``/``engine.pool_rebuilds``)
is copied onto the job record; fuzz jobs file their registry delta
(the ``fuzz.*`` work counters) the same way.  The metrics registry is
process-wide, so with overlapping jobs a delta can attribute a
neighbour's counters; it is exact whenever jobs do not overlap (and
always exact about a store hit, whose delta is empty by construction).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Set

from .. import faults, obs
from ..core.engine import exception_chain
from ..core.prochecker import AnalysisConfig, ProChecker
from ..fuzz import FuzzConfig, Fuzzer, campaign_digest
from ..obs.metrics import diff_snapshots
from ..store import ResultStore, job_digest, job_key
from .jobs import (KIND_FUZZ, TERMINAL_STATUSES, JobRecord, JobRegistry,
                   JobStatus)
from .journal import JobJournal
from .watchdog import Watchdog


class ServiceError(Exception):
    """Raised for unacceptable submissions (e.g. fault-plan configs)."""


class QueueFullError(ServiceError):
    """Admission control: the queue is at ``max_queue``.  The HTTP
    layer maps this to ``429`` with a ``Retry-After`` header."""

    def __init__(self, message: str, retry_after_seconds: float = 1.0):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ServiceDrainingError(ServiceError):
    """The service is draining (or stopped) and accepts no new work.
    Mapped to ``503`` + ``Retry-After`` — another instance (or the
    restarted one) will take the submission."""

    def __init__(self, message: str, retry_after_seconds: float = 5.0):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class AnalysisService:
    """Durable job queue + supervised worker fleet in front of the
    verification pipeline."""

    def __init__(self, store: ResultStore, workers: int = 2,
                 default_engine_jobs: Optional[int] = 1,
                 journal: Optional[JobJournal] = None,
                 max_queue: Optional[int] = None,
                 default_deadline_seconds: Optional[float] = None,
                 watchdog_interval_seconds: float = 0.25,
                 join_timeout_seconds: float = 30.0,
                 retry_after_seconds: float = 1.0):
        """``workers`` concurrent jobs; each job's *internal* check-phase
        width defaults to ``default_engine_jobs`` when the submitted
        config leaves ``jobs`` unset (``None`` delegates to the config's
        own default of all cores — sensible for a single-job service,
        oversubscribed for a wide worker fleet).

        ``journal`` makes the queue durable, ``max_queue`` bounds it,
        ``default_deadline_seconds`` applies to jobs whose payload does
        not carry its own ``deadline_seconds``.  Deadlines and queue
        bounds are scheduling knobs: they never enter job identity.
        """
        self.store = store
        self.workers = max(1, workers)
        self.default_engine_jobs = default_engine_jobs
        self.journal = journal
        self.max_queue = max_queue
        self.default_deadline_seconds = default_deadline_seconds
        self.watchdog_interval_seconds = watchdog_interval_seconds
        self.join_timeout_seconds = join_timeout_seconds
        self.retry_after_seconds = retry_after_seconds
        self.registry = JobRegistry()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._fleet_lock = threading.Lock()
        self._abandoned: Set[str] = set()
        self._leaked: List[str] = []
        self._worker_seq = 0
        self._watchdog: Optional[Watchdog] = None
        self._started = False
        self._stopping = False
        self._draining = False
        self._recovered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AnalysisService":
        if self._started:
            return self
        self._started = True
        self._stopping = False
        self._draining = False
        self._rebuild_queue()
        if self.journal is not None and not self._recovered:
            self._recover()
        with self._fleet_lock:
            while len(self._threads) < self.workers:
                self._spawn_worker_locked()
        self._watchdog = Watchdog(
            self, interval_seconds=self.watchdog_interval_seconds).start()
        return self

    def drain(self, wait: bool = True,
              timeout: Optional[float] = None) -> bool:
        """Enter drain mode: stop accepting and dequeueing new work.

        In-flight jobs run to completion; queued jobs stay ``QUEUED``
        (journaled — the next incarnation replays them).  With
        ``wait=True``, blocks until no job is ``RUNNING`` (bounded by
        ``timeout``); returns whether the service is fully idle.
        """
        already = self._draining
        self._draining = True
        if not already:
            obs.count("serve.drains")
        if wait:
            return self.wait_idle(timeout)
        return not self.registry.list(JobStatus.RUNNING)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is ``RUNNING``; returns False on timeout."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while self.registry.list(JobStatus.RUNNING):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def stop(self, wait: bool = True) -> None:
        """Stop the fleet.  Queued jobs are left ``QUEUED`` (journaled —
        a restart or a fresh :meth:`start` picks them back up); workers
        exit after their current job.  Idempotent, and restartable:
        ``stop()`` then ``start()`` spawns a fresh fleet over the same
        registry and queue.
        """
        if not self._started or self._stopping:
            return
        self._stopping = True
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        with self._fleet_lock:
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        if wait:
            leaked = []
            for thread in threads:
                thread.join(timeout=self.join_timeout_seconds)
                if thread.is_alive():
                    leaked.append(thread.name)
                    obs.count("serve.stop_leaked_threads")
            if leaked:
                # A leaked worker is stuck inside a job; write it off so
                # it retires (instead of rejoining a restarted fleet)
                # whenever its pipeline finally returns.
                with self._fleet_lock:
                    self._abandoned.update(leaked)
            self._leaked = leaked
        with self._fleet_lock:
            self._threads = []
        self._started = False
        self._stopping = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """Readiness: accepting submissions (liveness is being up)."""
        return self._started and not self._draining and not self._stopping

    # ------------------------------------------------------------------
    # Journal recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: re-queue every unfinished job, in the
        original submission order.  Jobs whose digest is already in the
        store complete as O(1) hits right here; the rest run cold."""
        replay = self.journal.replay()
        self.registry.advance_past(replay.max_job_number)
        for entry in replay.pending:
            record = JobRecord(
                job_id=entry["job_id"],
                digest=entry["digest"],
                implementation=entry.get("implementation", ""),
                payload=dict(entry.get("payload") or {}),
                kind=entry.get("kind", "analysis"),
                deadline_seconds=entry.get("deadline_seconds"),
                submitted_at=entry.get("submitted_at", time.time()),
            )
            self.registry.add(record)
        # Compact: the finished history has served its purpose; the new
        # journal holds exactly the still-pending submissions.
        self.journal.rotate(list(replay.pending))
        for entry in replay.pending:
            record = self.registry.get(entry["job_id"])
            if record.kind != KIND_FUZZ \
                    and self.store.get(record.digest) is not None:
                obs.count("serve.store_hits")
                self._finish_hit(record)
            else:
                obs.count("serve.jobs_requeued")
                self._queue.put(record.job_id)
        self._recovered = True

    # ------------------------------------------------------------------
    # Submission (the bridge side)
    # ------------------------------------------------------------------
    def submit(self, payload: Dict) -> JobRecord:
        """Accept one job payload: an analysis config, or a fuzz
        campaign when the payload says ``"type": "fuzz"``.

        Raises :class:`~repro.schema.SchemaVersionError` /
        :class:`~repro.core.engine.EngineError` /
        :class:`~repro.store.StoreError` /
        :class:`~repro.fuzz.FuzzConfigError` on malformed payloads,
        :class:`ServiceError` on fault-plan submissions (a shared
        service must not let one client sabotage the worker fleet),
        :class:`ServiceDrainingError` while draining and
        :class:`QueueFullError` past the queue bound.
        """
        self._admit()
        if payload.get("type") == KIND_FUZZ:
            return self._submit_fuzz(payload)
        config = AnalysisConfig.from_dict(payload)
        if config.fault_plan is not None:
            raise ServiceError(
                "fault-plan submissions are not accepted in service "
                "mode; use the one-shot CLI (--inject-fault) instead")
        if config.jobs is None and self.default_engine_jobs is not None:
            config.jobs = self.default_engine_jobs
        digest = job_digest(config)
        record = JobRecord(
            job_id=self.registry.allocate_id(),
            digest=digest,
            implementation=config.implementation,
            payload=config.to_dict(),
            deadline_seconds=self._resolve_deadline(payload),
        )
        self._journal_submit(record)
        self.registry.add(record)
        if self.store.get(digest) is not None:
            # O(1) path: identical job already analysed — serve it
            # straight from the store, consuming zero pipeline work.
            obs.count("serve.store_hits")
            self._finish_hit(record)
        else:
            obs.count("serve.jobs_queued")
            self._queue.put(record.job_id)
        return record

    def _submit_fuzz(self, payload: Dict) -> JobRecord:
        """Queue one fuzz campaign.

        Campaigns are *store-exempt*: they are open-ended discovery
        work, not content-addressed analyses — identical resubmission
        deliberately re-runs (the determinism contract makes that a
        byte-identical re-derivation, which is exactly what a CI
        re-check wants).  The campaign digest still names the job so
        clients can correlate runs.
        """
        config = FuzzConfig.from_dict(payload)
        record = JobRecord(
            job_id=self.registry.allocate_id(),
            digest=campaign_digest(config),
            implementation=config.implementation,
            payload=config.to_dict(),
            kind=KIND_FUZZ,
            deadline_seconds=self._resolve_deadline(payload),
        )
        self._journal_submit(record)
        self.registry.add(record)
        obs.count("serve.fuzz_jobs_queued")
        self._queue.put(record.job_id)
        return record

    def _admit(self) -> None:
        """Admission control: drain state first, then the queue bound."""
        if self._draining or self._stopping:
            obs.count("serve.drain_rejections")
            raise ServiceDrainingError(
                "service is draining and accepts no new jobs; retry "
                "against the restarted instance",
                retry_after_seconds=max(5.0, self.retry_after_seconds))
        if self.max_queue is not None \
                and self._queue.qsize() >= self.max_queue:
            obs.count("serve.queue_rejections")
            raise QueueFullError(
                f"queue is full ({self.max_queue} job(s) pending); "
                f"retry after backoff",
                retry_after_seconds=self.retry_after_seconds)

    def _resolve_deadline(self, payload: Dict) -> Optional[float]:
        deadline = payload.get("deadline_seconds")
        if deadline is None:
            return self.default_deadline_seconds
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise ServiceError(
                f"deadline_seconds must be a positive number, "
                f"got {payload.get('deadline_seconds')!r}") from None
        if deadline <= 0:
            raise ServiceError("deadline_seconds must be > 0")
        return deadline

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord:
        return self.registry.get(job_id)

    def jobs(self, status: Optional[JobStatus] = None,
             implementation: Optional[str] = None) -> List[JobRecord]:
        return self.registry.list(status, implementation)

    def report(self, digest: str) -> Optional[Dict]:
        return self.store.get(digest)

    def progress(self, job_id: str) -> Dict:
        """Live progress of one job, from the :mod:`repro.obs` registry.

        For a running job: elapsed wall-clock plus the counter delta
        since the job started (process-wide attribution — see module
        docstring).  For a finished job: the final per-job counters.
        """
        record = self.registry.get(job_id)
        if record.status is JobStatus.RUNNING \
                and record.start_snapshot is not None:
            delta = diff_snapshots(record.start_snapshot,
                                   obs.metrics().snapshot())
            counters = delta.get("counters", {})
        else:
            counters = dict(record.counters)
        return {
            "status": record.status.value,
            "elapsed_seconds": record.elapsed_seconds(),
            "counters": counters,
        }

    def stats(self) -> Dict:
        """Service-level health block (the ``/v1/health`` body).

        ``live`` is trivially true when the process answers; ``ready``
        is the readiness half of the split — up, not draining, not
        stopping.  A full queue is *backpressure* (429 on submit), not
        unreadiness; it is reported separately as ``queue_full``.
        """
        by_status: Dict[str, int] = {}
        for record in self.registry.list():
            by_status[record.status.value] = \
                by_status.get(record.status.value, 0) + 1
        with self._fleet_lock:
            alive = sum(1 for t in self._threads
                        if t.is_alive() and t.name not in self._abandoned)
        queued = self._queue.qsize()
        return {
            "live": True,
            "ready": self.ready,
            "draining": self._draining,
            "workers": self.workers,
            "workers_alive": alive,
            "queued": queued,
            "max_queue": self.max_queue,
            "queue_full": (self.max_queue is not None
                           and queued >= self.max_queue),
            "leaked_threads": list(self._leaked),
            "jobs": by_status,
            "store": self.store.stats(),
            "journal": (self.journal.stats()
                        if self.journal is not None else None),
        }

    # ------------------------------------------------------------------
    # The worker fleet (the scheduler side)
    # ------------------------------------------------------------------
    def _spawn_worker_locked(self) -> threading.Thread:
        """Spawn one worker (caller holds ``_fleet_lock``)."""
        index = self._worker_seq
        self._worker_seq += 1
        thread = threading.Thread(target=self._worker_loop,
                                  name=f"serve-worker-{index}",
                                  daemon=True)
        thread.start()
        self._threads.append(thread)
        return thread

    def _respawn_dead_workers(self) -> int:
        """Keep the fleet at strength: replace dead and abandoned
        workers (called from the watchdog scan).  Returns the number of
        workers respawned."""
        if not self._started or self._stopping:
            return 0
        respawned = 0
        with self._fleet_lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            effective = sum(1 for t in self._threads
                            if t.name not in self._abandoned)
            while effective < self.workers:
                self._spawn_worker_locked()
                effective += 1
                respawned += 1
                obs.count("serve.workers_respawned")
        return respawned

    def _abandon_worker(self, name: str) -> None:
        """Write off a worker stuck past its job's deadline: it exits
        the loop when its pipeline returns, and a replacement is
        spawned immediately."""
        if not name:
            return
        with self._fleet_lock:
            self._abandoned.add(name)
        self._respawn_dead_workers()

    def _retired(self) -> bool:
        """Whether the current worker has been written off (abandoned
        after a deadline, or leaked at stop) and must exit its loop."""
        name = threading.current_thread().name
        with self._fleet_lock:
            if name in self._abandoned:
                self._abandoned.discard(name)
                return True
        return False

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            if self._stopping or self._draining:
                # Drain/stop: leave the job QUEUED (it is journaled — a
                # restart replays it); keep cycling so the stop
                # sentinel is reached.
                continue
            record: Optional[JobRecord] = None
            try:
                record = self.registry.get(job_id)
                if record.kind == KIND_FUZZ:
                    self._run_fuzz_job(record)
                else:
                    self._run_job(record)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                obs.count("serve.worker_loop_errors")
                if record is not None:
                    # An exception outside the per-job isolation
                    # boundary (e.g. dispatch) used to strand the
                    # record QUEUED forever; fail it instead.
                    self._strand_failed(record, exc)
            if self._retired():
                return

    def _strand_failed(self, record: JobRecord, exc: BaseException) -> None:
        record.error = exception_chain(exc)
        self._finalize(record, JobStatus.FAILED)
        obs.count("serve.jobs_stranded")

    def _run_job(self, record: JobRecord) -> None:
        record.status = JobStatus.RUNNING
        record.started_at = time.time()
        record.worker = threading.current_thread().name
        record.start_snapshot = obs.metrics().snapshot()
        try:
            # Write-ahead: a failing start append fails this job (the
            # journal can no longer promise recovery for it) but never
            # the worker.
            self._journal_start(record)
            # In-flight coalescing: an identical job may have finished
            # (and filed its report) between submission and now.
            if self.store.get(record.digest) is not None:
                obs.count("serve.store_hits")
                self._finish_hit(record)
                return
            faults.trip("serve.run_job", key=record.implementation)
            config = AnalysisConfig.from_dict(record.payload)
            with obs.span("serve.job", job=record.job_id,
                          implementation=record.implementation):
                report = ProChecker.from_config(config).analyze()
            payload = report.to_dict()
            self.store.put(record.digest, payload,
                           key=job_key(config))
            counters: Dict[str, float] = {}
            if report.stats is not None:
                counters = dict(report.stats.runtime
                                .get("metrics", {})
                                .get("counters", {}))
            self._finalize(record, JobStatus.DONE, counters=counters,
                           done_counter="serve.jobs_completed")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            record.error = exception_chain(exc)
            self._finalize(record, JobStatus.FAILED)

    def _run_fuzz_job(self, record: JobRecord) -> None:
        """Run one fuzz campaign on this worker thread (no store)."""
        record.status = JobStatus.RUNNING
        record.started_at = time.time()
        record.worker = threading.current_thread().name
        record.start_snapshot = obs.metrics().snapshot()
        try:
            self._journal_start(record)
            faults.trip("serve.run_job", key=record.implementation)
            config = FuzzConfig.from_dict(record.payload)
            with obs.span("serve.fuzz_job", job=record.job_id,
                          implementation=record.implementation):
                result = Fuzzer(config).run()
            record.result = result.summary()
            delta = diff_snapshots(record.start_snapshot,
                                   obs.metrics().snapshot())
            self._finalize(record, JobStatus.DONE,
                           counters=dict(delta.get("counters", {})),
                           done_counter="serve.fuzz_jobs_completed")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            record.error = exception_chain(exc)
            self._finalize(record, JobStatus.FAILED)

    def _finalize(self, record: JobRecord, status: JobStatus,
                  counters: Optional[Dict[str, float]] = None,
                  done_counter: str = "serve.jobs_completed") -> None:
        """Terminal transition, raced against the watchdog: a record
        the watchdog already timed out stays ``TIMEOUT`` — the late
        completion is counted, never resurrected."""
        with record.lock:
            if record.status in TERMINAL_STATUSES:
                obs.count("serve.late_completions")
                return
            record.status = status
            record.finished_at = time.time()
            if counters is not None:
                record.counters = counters
        if status is JobStatus.DONE:
            obs.count(done_counter)
        else:
            obs.count("serve.jobs_failed")
        self._journal_finish(record)

    def _finish_hit(self, record: JobRecord) -> None:
        with record.lock:
            if record.status in TERMINAL_STATUSES:
                obs.count("serve.late_completions")
                return
            record.status = JobStatus.DONE
            record.store_hit = True
            record.counters = {}
            record.finished_at = time.time()
        self._journal_finish(record)

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _journal_submit(self, record: JobRecord) -> None:
        """Write-ahead: raising here fails the *submission* — the job
        is neither registered nor queued, so the caller can retry."""
        if self.journal is not None:
            self.journal.append_submit(record)

    def _journal_start(self, record: JobRecord) -> None:
        if self.journal is not None:
            self.journal.append_start(record)

    def _journal_finish(self, record: JobRecord) -> None:
        """Best-effort: the job's outcome is already decided (and a
        DONE analysis is in the store), so a failing finish append is
        counted and tolerated — a replay resolves the job as a store
        hit instead of losing the verdict."""
        if self.journal is None:
            return
        try:
            self.journal.append_finish(record)
        except Exception:  # noqa: BLE001 - durability must not undo work
            obs.count("serve.journal_append_failures")

    def _rebuild_queue(self) -> None:
        """Re-derive the queue from the registry (restart path).

        A previous fleet leaves stop sentinels behind, and a draining
        worker consumes a job id while leaving its record ``QUEUED`` —
        so on (re)start the registry, not the residual queue, is the
        source of truth: drop everything queued and re-enqueue every
        ``QUEUED`` record in submission order.
        """
        self._drain_residual_queue()
        for record in self.registry.list(JobStatus.QUEUED):
            self._queue.put(record.job_id)

    def _drain_residual_queue(self) -> None:
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                return
