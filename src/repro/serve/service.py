"""The scheduler: a job queue drained by a pool of worker threads.

The split mirrors Klever's bridge/scheduler architecture: the HTTP layer
(:mod:`repro.serve.http`) only translates requests, this module owns the
queue, the worker fleet and the result-store short-circuit.

Every job travels one of two paths:

- **store hit** — the job's content address is already filed: the record
  is marked ``DONE`` *at submission time*, with ``store_hit=True`` and an
  empty per-job counter delta.  No extraction, no model checking — the
  acceptance criterion "second identical submission consumes zero
  ``engine.*``/``mc.*`` work" is checked against exactly this emptiness.
- **cold run** — a worker thread dequeues the job, re-checks the store
  (an identical job submitted while the first was still running
  coalesces into a hit here), then runs the full pipeline via
  :meth:`ProChecker.from_config(...).analyze()
  <repro.core.prochecker.ProChecker.analyze>` — inheriting the engine's
  process-pool fan-out, retry/timeout resilience and crash isolation —
  and files the finished report.

A third path exists for ``"type": "fuzz"`` payloads: a long-running
fuzz campaign (:mod:`repro.fuzz`) executed on a worker thread.
Campaigns are **store-exempt** — they are open-ended discovery work,
not content-addressed analyses — so they always run cold; their
``FuzzResult.summary()`` is filed inline on the job record instead of
in the store.

Per-job telemetry: the finished report's
``stats.runtime["metrics"]["counters"]`` delta (which includes the
PR 3 resilience counters ``engine.group_*``/``engine.pool_rebuilds``)
is copied onto the job record; fuzz jobs file their registry delta
(the ``fuzz.*`` work counters) the same way.  The metrics registry is
process-wide, so with overlapping jobs a delta can attribute a
neighbour's counters; it is exact whenever jobs do not overlap (and
always exact about a store hit, whose delta is empty by construction).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional

from .. import obs
from ..core.engine import exception_chain
from ..core.prochecker import AnalysisConfig, ProChecker
from ..fuzz import FuzzConfig, Fuzzer, campaign_digest
from ..obs.metrics import diff_snapshots
from ..store import ResultStore, job_digest, job_key
from .jobs import KIND_FUZZ, JobRecord, JobRegistry, JobStatus


class ServiceError(Exception):
    """Raised for unacceptable submissions (e.g. fault-plan configs)."""


class AnalysisService:
    """Job queue + worker fleet in front of the verification pipeline."""

    def __init__(self, store: ResultStore, workers: int = 2,
                 default_engine_jobs: Optional[int] = 1):
        """``workers`` concurrent jobs; each job's *internal* check-phase
        width defaults to ``default_engine_jobs`` when the submitted
        config leaves ``jobs`` unset (``None`` delegates to the config's
        own default of all cores — sensible for a single-job service,
        oversubscribed for a wide worker fleet)."""
        self.store = store
        self.workers = max(1, workers)
        self.default_engine_jobs = default_engine_jobs
        self.registry = JobRegistry()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AnalysisService":
        if self._started:
            return self
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, wait: bool = True) -> None:
        """Drain-free shutdown: workers exit after their current job."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)

    # ------------------------------------------------------------------
    # Submission (the bridge side)
    # ------------------------------------------------------------------
    def submit(self, payload: Dict) -> JobRecord:
        """Accept one job payload: an analysis config, or a fuzz
        campaign when the payload says ``"type": "fuzz"``.

        Raises :class:`~repro.schema.SchemaVersionError` /
        :class:`~repro.core.engine.EngineError` /
        :class:`~repro.store.StoreError` /
        :class:`~repro.fuzz.FuzzConfigError` on malformed payloads and
        :class:`ServiceError` on fault-plan submissions (a shared
        service must not let one client sabotage the worker fleet).
        """
        if payload.get("type") == KIND_FUZZ:
            return self._submit_fuzz(payload)
        config = AnalysisConfig.from_dict(payload)
        if config.fault_plan is not None:
            raise ServiceError(
                "fault-plan submissions are not accepted in service "
                "mode; use the one-shot CLI (--inject-fault) instead")
        if config.jobs is None and self.default_engine_jobs is not None:
            config.jobs = self.default_engine_jobs
        digest = job_digest(config)
        record = JobRecord(
            job_id=self.registry.allocate_id(),
            digest=digest,
            implementation=config.implementation,
            payload=config.to_dict(),
        )
        self.registry.add(record)
        if self.store.get(digest) is not None:
            # O(1) path: identical job already analysed — serve it
            # straight from the store, consuming zero pipeline work.
            obs.count("serve.store_hits")
            self._finish_hit(record)
        else:
            obs.count("serve.jobs_queued")
            self._queue.put(record.job_id)
        return record

    def _submit_fuzz(self, payload: Dict) -> JobRecord:
        """Queue one fuzz campaign.

        Campaigns are *store-exempt*: they are open-ended discovery
        work, not content-addressed analyses — identical resubmission
        deliberately re-runs (the determinism contract makes that a
        byte-identical re-derivation, which is exactly what a CI
        re-check wants).  The campaign digest still names the job so
        clients can correlate runs.
        """
        config = FuzzConfig.from_dict(payload)
        record = JobRecord(
            job_id=self.registry.allocate_id(),
            digest=campaign_digest(config),
            implementation=config.implementation,
            payload=config.to_dict(),
            kind=KIND_FUZZ,
        )
        self.registry.add(record)
        obs.count("serve.fuzz_jobs_queued")
        self._queue.put(record.job_id)
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord:
        return self.registry.get(job_id)

    def jobs(self, status: Optional[JobStatus] = None,
             implementation: Optional[str] = None) -> List[JobRecord]:
        return self.registry.list(status, implementation)

    def report(self, digest: str) -> Optional[Dict]:
        return self.store.get(digest)

    def progress(self, job_id: str) -> Dict:
        """Live progress of one job, from the :mod:`repro.obs` registry.

        For a running job: elapsed wall-clock plus the counter delta
        since the job started (process-wide attribution — see module
        docstring).  For a finished job: the final per-job counters.
        """
        record = self.registry.get(job_id)
        if record.status is JobStatus.RUNNING \
                and record.start_snapshot is not None:
            delta = diff_snapshots(record.start_snapshot,
                                   obs.metrics().snapshot())
            counters = delta.get("counters", {})
        else:
            counters = dict(record.counters)
        return {
            "status": record.status.value,
            "elapsed_seconds": record.elapsed_seconds(),
            "counters": counters,
        }

    def stats(self) -> Dict:
        """Service-level health block (the ``/v1/health`` body)."""
        by_status: Dict[str, int] = {}
        for record in self.registry.list():
            by_status[record.status.value] = \
                by_status.get(record.status.value, 0) + 1
        return {
            "workers": self.workers,
            "queued": self._queue.qsize(),
            "jobs": by_status,
            "store": self.store.stats(),
        }

    # ------------------------------------------------------------------
    # The worker fleet (the scheduler side)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                record = self.registry.get(job_id)
                if record.kind == KIND_FUZZ:
                    self._run_fuzz_job(record)
                else:
                    self._run_job(record)
            except Exception:   # noqa: BLE001 - worker must survive
                obs.count("serve.worker_loop_errors")

    def _run_job(self, record: JobRecord) -> None:
        record.status = JobStatus.RUNNING
        record.started_at = time.time()
        record.worker = threading.current_thread().name
        record.start_snapshot = obs.metrics().snapshot()
        # In-flight coalescing: an identical job may have finished (and
        # filed its report) between this job's submission and now.
        if self.store.get(record.digest) is not None:
            obs.count("serve.store_hits")
            self._finish_hit(record)
            return
        try:
            config = AnalysisConfig.from_dict(record.payload)
            with obs.span("serve.job", job=record.job_id,
                          implementation=record.implementation):
                report = ProChecker.from_config(config).analyze()
            payload = report.to_dict()
            self.store.put(record.digest, payload,
                           key=job_key(config))
            if report.stats is not None:
                record.counters = dict(report.stats.runtime
                                       .get("metrics", {})
                                       .get("counters", {}))
            record.status = JobStatus.DONE
            obs.count("serve.jobs_completed")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            record.error = exception_chain(exc)
            record.status = JobStatus.FAILED
            obs.count("serve.jobs_failed")
        finally:
            record.finished_at = time.time()

    def _run_fuzz_job(self, record: JobRecord) -> None:
        """Run one fuzz campaign on this worker thread (no store)."""
        record.status = JobStatus.RUNNING
        record.started_at = time.time()
        record.worker = threading.current_thread().name
        record.start_snapshot = obs.metrics().snapshot()
        try:
            config = FuzzConfig.from_dict(record.payload)
            with obs.span("serve.fuzz_job", job=record.job_id,
                          implementation=record.implementation):
                result = Fuzzer(config).run()
            record.result = result.summary()
            delta = diff_snapshots(record.start_snapshot,
                                   obs.metrics().snapshot())
            record.counters = dict(delta.get("counters", {}))
            record.status = JobStatus.DONE
            obs.count("serve.fuzz_jobs_completed")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            record.error = exception_chain(exc)
            record.status = JobStatus.FAILED
            obs.count("serve.jobs_failed")
        finally:
            record.finished_at = time.time()

    def _finish_hit(self, record: JobRecord) -> None:
        record.status = JobStatus.DONE
        record.store_hit = True
        record.counters = {}
        record.finished_at = time.time()
