"""Job records and the thread-safe job registry of the service mode."""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import schema


class JobStatus(str, enum.Enum):
    """Lifecycle of one submitted job.

    ``QUEUED → RUNNING → DONE | FAILED | TIMEOUT``; a store hit goes
    straight to ``DONE`` at submission time (the O(1) path, analysis
    jobs only — fuzz campaigns are store-exempt).  ``TIMEOUT`` is
    assigned by the watchdog when a running job exceeds its deadline;
    like ``DONE``/``FAILED`` it is terminal — a worker returning late
    from a timed-out job must not overwrite it.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"


#: Statuses a job cannot leave (the watchdog and workers both check
#: against this set under the record lock before finalising).
TERMINAL_STATUSES = frozenset(
    (JobStatus.DONE, JobStatus.FAILED, JobStatus.TIMEOUT))

#: Job kinds the service dispatches on.
KIND_ANALYSIS = "analysis"
KIND_FUZZ = "fuzz"


@dataclass
class JobRecord:
    """One submitted job: config payload, identity, lifecycle, telemetry."""

    job_id: str
    #: content address of the job (:func:`repro.store.job_digest` for
    #: analyses, :func:`repro.fuzz.campaign_digest` for campaigns)
    digest: str
    implementation: str
    #: the submitted config wire payload, verbatim
    payload: Dict
    #: :data:`KIND_ANALYSIS` or :data:`KIND_FUZZ`
    kind: str = KIND_ANALYSIS
    status: JobStatus = JobStatus.QUEUED
    #: served from the result store without running the pipeline
    store_hit: bool = False
    error: str = ""
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: wall-clock budget once RUNNING; ``None`` → no deadline.  A
    #: scheduling knob like ``jobs`` — deliberately excluded from the
    #: store's job identity (it cannot change what a verdict *is*).
    deadline_seconds: Optional[float] = None
    #: worker-thread name that executed the job ("" for submit-time hits)
    worker: str = ""
    #: per-job metrics-registry delta (engine.*/mc.*/fuzz.* counters);
    #: empty for store hits — that emptiness is the "zero work" hook
    counters: Dict[str, float] = field(default_factory=dict)
    #: registry snapshot at job start (progress baseline; not serialized)
    start_snapshot: Optional[Dict] = None
    #: inline result summary for jobs whose output is not store-backed
    #: (fuzz campaigns file their ``FuzzResult.summary()`` here)
    result: Optional[Dict] = None
    #: guards status finalisation (watchdog TIMEOUT vs worker finish)
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False, compare=False)

    def elapsed_seconds(self, now: Optional[float] = None) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at
        if end is None:
            end = now if now is not None else time.time()
        return max(0.0, end - self.started_at)

    def to_dict(self) -> Dict:
        """The ``/v1/jobs`` wire form (versioned)."""
        return schema.stamp({
            "job_id": self.job_id,
            "digest": self.digest,
            "implementation": self.implementation,
            "kind": self.kind,
            "status": self.status.value,
            "store_hit": self.store_hit,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": self.elapsed_seconds(),
            "deadline_seconds": self.deadline_seconds,
            "worker": self.worker,
            "counters": dict(self.counters),
            "config": dict(self.payload),
            "result": (dict(self.result)
                       if self.result is not None else None),
        })


class JobRegistry:
    """Thread-safe id allocation and lookup for every submitted job."""

    def __init__(self):
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._next = 1

    def allocate_id(self) -> str:
        with self._lock:
            allocated = self._next
            self._next += 1
            return f"j{allocated:06d}"

    def advance_past(self, job_number: int) -> None:
        """Move the id counter beyond ``job_number`` (journal replay:
        resurrected ids must never collide with fresh allocations)."""
        with self._lock:
            self._next = max(self._next, job_number + 1)

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._jobs[record.job_id] = record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._jobs[job_id]

    def list(self, status: Optional[JobStatus] = None,
             implementation: Optional[str] = None) -> List[JobRecord]:
        """Submission-ordered listing with optional filters."""
        with self._lock:
            records = list(self._jobs.values())
        if status is not None:
            records = [r for r in records if r.status is status]
        if implementation is not None:
            records = [r for r in records
                       if r.implementation == implementation]
        return sorted(records, key=lambda r: r.job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
