"""Deadline enforcement and worker-fleet supervision for the service.

Python threads cannot be killed, so a job that hangs — a pathological
model, a stuck fault injection, an engine bug — would silently wedge
one worker forever and, with enough of them, the whole fleet.  The
watchdog is the monitor thread that keeps the service honest:

- **deadlines** — a ``RUNNING`` job past its ``deadline_seconds`` is
  marked :data:`~repro.serve.jobs.JobStatus.TIMEOUT` (terminal; the
  exception chain names the deadline), its ``finish`` is journaled,
  and the worker executing it is *abandoned*: when the stuck pipeline
  eventually returns, the worker notices it was written off, refuses
  to overwrite the ``TIMEOUT`` verdict (``serve.late_completions``)
  and exits its loop;

- **fleet strength** — every scan respawns a replacement for each
  worker thread that died or was abandoned
  (``serve.workers_respawned``), so a hung or crashed worker never
  shrinks effective capacity.

The scan interval bounds the detection margin: a job is marked
``TIMEOUT`` no later than ``deadline + interval`` after it started.
All state transitions go through the record's own lock, so a watchdog
marking ``TIMEOUT`` and a worker finishing late can never interleave
into a corrupt status.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from .. import obs
from .jobs import JobStatus


class Watchdog:
    """Monitor thread: deadline enforcement + worker respawn."""

    def __init__(self, service, interval_seconds: float = 0.25):
        self.service = service
        self.interval_seconds = max(0.005, interval_seconds)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "Watchdog":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="serve-watchdog",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if wait and thread is not None and thread.is_alive():
            thread.join(timeout=5)

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.scan()
            except Exception:  # noqa: BLE001 - the watchdog must survive
                obs.count("serve.watchdog_errors")
            self._stop.wait(self.interval_seconds)

    def scan(self, now: Optional[float] = None) -> int:
        """One supervision pass; returns how many jobs were timed out.

        Separated from the loop (and accepting an injected clock) so
        tests can drive supervision deterministically.
        """
        timed_out = self._enforce_deadlines(now)
        self.service._respawn_dead_workers()
        return timed_out

    def _enforce_deadlines(self, now: Optional[float] = None) -> int:
        current = now if now is not None else time.time()
        timed_out = 0
        for record in self.service.registry.list(JobStatus.RUNNING):
            deadline = record.deadline_seconds
            if deadline is None or record.started_at is None:
                continue
            overshoot = current - record.started_at - deadline
            if overshoot < 0:
                continue
            with record.lock:
                if record.status is not JobStatus.RUNNING:
                    continue  # finished between list() and lock
                record.status = JobStatus.TIMEOUT
                record.error = (
                    f"JobDeadlineExceeded: job {record.job_id} exceeded "
                    f"its {deadline:.3f}s deadline "
                    f"(running {current - record.started_at:.3f}s on "
                    f"{record.worker or 'unknown worker'})")
                record.finished_at = current
            timed_out += 1
            obs.count("serve.jobs_timed_out")
            self.service._abandon_worker(record.worker)
            self.service._journal_finish(record)
        return timed_out


__all__ = ["Watchdog"]
