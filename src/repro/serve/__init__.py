"""``repro.serve`` — verification as a service.

A long-running mode (``repro serve --port N --workers K``) that turns
the one-shot pipeline into idempotent, addressable, concurrent jobs:

- :class:`AnalysisService` — thread-safe job queue + worker fleet, with
  an O(1) short-circuit through the content-addressed result store
  (:mod:`repro.store`) for identical resubmissions;
- :mod:`repro.serve.http` — the versioned ``/v1`` HTTP JSON API
  (stdlib ``ThreadingHTTPServer``, no new dependencies);
- :class:`ServeClient` — a stdlib client for scripts, benches, tests.

Two job kinds share the queue: content-addressed analyses (store
short-circuit applies) and store-exempt ``fuzz`` campaigns
(:mod:`repro.fuzz`) whose summaries ride inline on the job record.

The resilience layer (PR 10) makes the service durable and
self-healing:

- :class:`JobJournal` — a write-ahead JSONL journal
  (``repro serve --journal DIR``); a restarted service replays every
  unfinished job deterministically;
- :class:`Watchdog` — per-job deadlines (``TIMEOUT`` status) and
  worker-fleet supervision (dead/hung workers are respawned);
- drain lifecycle (SIGTERM/SIGINT → finish in-flight, journal the
  rest) with a liveness/readiness health split;
- bounded-queue backpressure (``--max-queue`` → HTTP 429 +
  ``Retry-After``) and idempotency-aware client retries.
"""

from .client import (RETRY_CONNECT, RETRY_IDEMPOTENT, RETRY_NONE,
                     TERMINAL_JOB_STATUSES, ServeClient, ServeClientError)
from .http import ServiceHandler, ServiceHTTPServer, create_server
from .jobs import (KIND_ANALYSIS, KIND_FUZZ, TERMINAL_STATUSES, JobRecord,
                   JobRegistry, JobStatus)
from .journal import JobJournal, JournalError, JournalReplay
from .service import (AnalysisService, QueueFullError, ServiceDrainingError,
                      ServiceError)
from .watchdog import Watchdog

__all__ = [
    "AnalysisService", "JobJournal", "JobRecord", "JobRegistry",
    "JobStatus", "JournalError", "JournalReplay", "KIND_ANALYSIS",
    "KIND_FUZZ", "QueueFullError", "RETRY_CONNECT", "RETRY_IDEMPOTENT",
    "RETRY_NONE", "ServeClient", "ServeClientError",
    "ServiceDrainingError", "ServiceError", "ServiceHandler",
    "ServiceHTTPServer", "TERMINAL_JOB_STATUSES", "TERMINAL_STATUSES",
    "Watchdog", "create_server",
]
