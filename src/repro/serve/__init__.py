"""``repro.serve`` — verification as a service.

A long-running mode (``repro serve --port N --workers K``) that turns
the one-shot pipeline into idempotent, addressable, concurrent jobs:

- :class:`AnalysisService` — thread-safe job queue + worker fleet, with
  an O(1) short-circuit through the content-addressed result store
  (:mod:`repro.store`) for identical resubmissions;
- :mod:`repro.serve.http` — the versioned ``/v1`` HTTP JSON API
  (stdlib ``ThreadingHTTPServer``, no new dependencies);
- :class:`ServeClient` — a stdlib client for scripts, benches, tests.

Two job kinds share the queue: content-addressed analyses (store
short-circuit applies) and store-exempt ``fuzz`` campaigns
(:mod:`repro.fuzz`) whose summaries ride inline on the job record.
"""

from .client import ServeClient, ServeClientError
from .http import ServiceHandler, ServiceHTTPServer, create_server
from .jobs import (KIND_ANALYSIS, KIND_FUZZ, JobRecord, JobRegistry,
                   JobStatus)
from .service import AnalysisService, ServiceError

__all__ = [
    "AnalysisService", "JobRecord", "JobRegistry", "JobStatus",
    "KIND_ANALYSIS", "KIND_FUZZ", "ServeClient", "ServeClientError",
    "ServiceError", "ServiceHandler", "ServiceHTTPServer",
    "create_server",
]
