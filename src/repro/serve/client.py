"""A minimal stdlib client for the ``/v1`` API (tests, benches, scripts)."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

from ..core.engine import AnalysisConfig

ConfigLike = Union[AnalysisConfig, Dict]


class ServeClientError(Exception):
    """Transport failure, HTTP error body, or a wait that ran out."""


class ServeClient:
    """Talk to one ``repro serve`` instance over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
                detail = body.get("error", body)
            except ValueError:
                detail = exc.reason
            raise ServeClientError(
                f"{method} {path} -> {exc.code}: {detail}") from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"{method} {path} unreachable: {exc.reason}") from exc

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/v1/health")

    def submit(self, config: ConfigLike) -> Dict:
        """Submit a job; returns the job record (may already be done)."""
        payload = (config.to_dict()
                   if isinstance(config, AnalysisConfig) else dict(config))
        return self._request("POST", "/v1/jobs", payload)

    def submit_fuzz(self, implementation: str, seed: int = 0,
                    budget_execs: int = 400, **extra) -> Dict:
        """Submit a fuzz campaign (``extra`` maps onto ``FuzzConfig``)."""
        payload = {"type": "fuzz", "implementation": implementation,
                   "seed": seed, "budget_execs": budget_execs}
        payload.update(extra)
        return self._request("POST", "/v1/jobs", payload)

    def fuzz_result(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Wait for a fuzz job and return its campaign summary."""
        record = self.wait(job_id, timeout)
        if record["status"] != "done":
            raise ServeClientError(
                f"fuzz job {job_id} failed: {record.get('error', '')}")
        result = record.get("result")
        if not result:
            raise ServeClientError(
                f"job {job_id} carries no campaign summary "
                f"(kind={record.get('kind')!r})")
        return result

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, status: Optional[str] = None,
             implementation: Optional[str] = None) -> List[Dict]:
        query = []
        if status is not None:
            query.append(f"status={status}")
        if implementation is not None:
            query.append(f"implementation={implementation}")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._request("GET", "/v1/jobs" + suffix)["jobs"]

    def report(self, digest: str) -> Dict:
        return self._request("GET", f"/v1/reports/{digest}")["report"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_seconds: float = 0.05) -> Dict:
        """Poll until the job leaves the queue/running states.

        Returns the final job record (check ``status`` — a ``failed``
        job is returned, not raised); raises :class:`ServeClientError`
        if the job is still pending when ``timeout`` expires.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {record['status']} after "
                    f"{timeout:.1f}s")
            time.sleep(poll_seconds)

    def result(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Wait for a job and return its stored report payload."""
        record = self.wait(job_id, timeout)
        if record["status"] != "done":
            raise ServeClientError(
                f"job {job_id} failed: {record.get('error', '')}")
        return self.report(record["digest"])
