"""A minimal stdlib client for the ``/v1`` API (tests, benches, scripts).

Retry discipline — the part worth reading twice:

- **analysis submits are idempotent-by-digest**: the service content-
  addresses every analysis job, so re-sending the same payload can at
  worst produce a store hit.  They retry (jittered exponential
  backoff) on connection errors, on ``429`` backpressure (honouring
  ``Retry-After``) and on ``5xx``.
- **fuzz submits are NOT idempotent**: every accepted submission
  starts a fresh campaign.  They retry only on *connection* errors —
  where the request provably never reached the service — and never on
  an HTTP status, which proves the request was read.
- ``GET``\\ s are safe and retry like analysis submits.
- :meth:`ServeClient.wait` polls with *capped exponential backoff*
  (not a fixed interval), treats transient poll failures (connection,
  ``429``, ``5xx``) as retryable within the wait budget, and honours
  ``Retry-After``.

The sleep, the clock and the jitter RNG are injectable so every
schedule is unit-testable without wall-clock time.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Union

from ..core.engine import AnalysisConfig

ConfigLike = Union[AnalysisConfig, Dict]

#: Retry policies (see module docstring).
RETRY_IDEMPOTENT = "idempotent"
RETRY_CONNECT = "connect"
RETRY_NONE = "none"

#: Job statuses :meth:`ServeClient.wait` treats as final.
TERMINAL_JOB_STATUSES = ("done", "failed", "timeout")


class ServeClientError(Exception):
    """Transport failure, HTTP error body, or a wait that ran out.

    ``status`` is the HTTP status code (``None`` for connection
    failures and exhausted waits); ``retry_after`` is the parsed
    ``Retry-After`` header when the server sent one.
    """

    def __init__(self, message: str, status: Optional[int] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Talk to one ``repro serve`` instance over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff_seconds: float = 0.1,
                 backoff_cap_seconds: float = 2.0,
                 jitter_seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep
        self._clock = clock

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        """One attempt, no retries; raises :class:`ServeClientError`."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
                detail = body.get("error", body)
            except ValueError:
                detail = exc.reason
            raise ServeClientError(
                f"{method} {path} -> {exc.code}: {detail}",
                status=exc.code,
                retry_after=_parse_retry_after(exc.headers),
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"{method} {path} unreachable: {exc.reason}") from exc

    def _call(self, method: str, path: str,
              payload: Optional[Dict] = None,
              retry: str = RETRY_IDEMPOTENT) -> Dict:
        attempt = 0
        while True:
            try:
                return self._request(method, path, payload)
            except ServeClientError as exc:
                if attempt >= self.retries \
                        or not _retryable(exc, retry):
                    raise
                delay = (exc.retry_after if exc.retry_after is not None
                         else self._backoff(attempt))
                self._sleep(delay)
                attempt += 1

    def _backoff(self, attempt: int) -> float:
        """Jittered exponential backoff: ``base * 2^attempt`` capped,
        scaled by a jitter factor in ``[0.5, 1.0)`` so a fleet of
        rejected clients does not retry in lock-step."""
        delay = min(self.backoff_cap_seconds,
                    self.backoff_seconds * (2 ** attempt))
        return delay * (0.5 + 0.5 * self._rng.random())

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._call("GET", "/v1/health")

    def ready(self) -> bool:
        """Readiness probe: whether the service accepts submissions."""
        try:
            body = self._call("GET", "/v1/health/ready",
                              retry=RETRY_NONE)
        except ServeClientError as exc:
            if exc.status == 503:
                return False
            raise
        return bool(body.get("ready"))

    def submit(self, config: ConfigLike) -> Dict:
        """Submit a job; returns the job record (may already be done).

        Analysis submission is idempotent-by-digest, so this retries
        on connection errors, 429 backpressure and 5xx.
        """
        payload = (config.to_dict()
                   if isinstance(config, AnalysisConfig) else dict(config))
        return self._call("POST", "/v1/jobs", payload,
                          retry=RETRY_IDEMPOTENT)

    def submit_fuzz(self, implementation: str, seed: int = 0,
                    budget_execs: int = 400, **extra) -> Dict:
        """Submit a fuzz campaign (``extra`` maps onto ``FuzzConfig``).

        NOT idempotent — retried only on connection errors, never on
        an HTTP status (429/5xx prove the service read the request,
        and a blind re-send could start a duplicate campaign).
        """
        payload = {"type": "fuzz", "implementation": implementation,
                   "seed": seed, "budget_execs": budget_execs}
        payload.update(extra)
        return self._call("POST", "/v1/jobs", payload,
                          retry=RETRY_CONNECT)

    def fuzz_result(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Wait for a fuzz job and return its campaign summary."""
        record = self.wait(job_id, timeout)
        if record["status"] != "done":
            raise ServeClientError(
                f"fuzz job {job_id} {record['status']}: "
                f"{record.get('error', '')}")
        result = record.get("result")
        if not result:
            raise ServeClientError(
                f"job {job_id} carries no campaign summary "
                f"(kind={record.get('kind')!r})")
        return result

    def job(self, job_id: str) -> Dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self, status: Optional[str] = None,
             implementation: Optional[str] = None) -> List[Dict]:
        query = []
        if status is not None:
            query.append(f"status={status}")
        if implementation is not None:
            query.append(f"implementation={implementation}")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._call("GET", "/v1/jobs" + suffix)["jobs"]

    def report(self, digest: str) -> Dict:
        return self._call("GET", f"/v1/reports/{digest}")["report"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_seconds: float = 0.05,
             poll_cap_seconds: float = 1.0) -> Dict:
        """Poll until the job reaches a terminal status.

        The poll interval starts at ``poll_seconds`` and doubles up to
        ``poll_cap_seconds`` (capped exponential backoff — a long job
        is not hammered at the initial rate).  A ``429`` poll response
        honours its ``Retry-After``; connection errors and ``5xx``
        within the wait budget are retried on the same schedule.

        Returns the final job record (check ``status`` — a ``failed``
        or ``timeout`` job is returned, not raised); raises
        :class:`ServeClientError` if the job is still pending when
        ``timeout`` expires.
        """
        deadline = self._clock() + timeout
        delay = max(0.0, poll_seconds)
        last_status = "unknown"
        while True:
            pause = delay
            try:
                record = self._request("GET", f"/v1/jobs/{job_id}")
            except ServeClientError as exc:
                if not _retryable(exc, RETRY_IDEMPOTENT):
                    raise
                if exc.retry_after is not None:
                    pause = exc.retry_after
            else:
                last_status = record.get("status", "unknown")
                if last_status in TERMINAL_JOB_STATUSES:
                    return record
            if self._clock() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {last_status} after "
                    f"{timeout:.1f}s")
            self._sleep(pause)
            delay = min(poll_cap_seconds, max(delay, poll_seconds) * 2)

    def result(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Wait for a job and return its stored report payload."""
        record = self.wait(job_id, timeout)
        if record["status"] != "done":
            raise ServeClientError(
                f"job {job_id} {record['status']}: "
                f"{record.get('error', '')}")
        return self.report(record["digest"])


def _retryable(exc: ServeClientError, policy: str) -> bool:
    if policy == RETRY_NONE:
        return False
    if exc.status is None:
        # Connection-level failure: the request never got an answer;
        # safe to retry under every policy.
        return True
    if policy == RETRY_CONNECT:
        return False
    return exc.status == 429 or 500 <= exc.status < 600


def _parse_retry_after(headers) -> Optional[float]:
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return None
