"""Shared benchmark fixtures: conformance runs and extracted models."""

import pytest

from repro.baselines import lteinspector_mme, lteinspector_ue
from repro.conformance import full_suite, run_conformance
from repro.extraction import extract_model, table_for_implementation
from repro.lte.implementations import REGISTRY

IMPLEMENTATIONS = ("reference", "srsue", "oai")


@pytest.fixture(scope="session")
def conformance_runs():
    return {impl: run_conformance(impl, full_suite(impl))
            for impl in IMPLEMENTATIONS}


@pytest.fixture(scope="session")
def extracted_models(conformance_runs):
    models = {}
    for impl, run in conformance_runs.items():
        table = table_for_implementation(REGISTRY[impl])
        fsm, _ = extract_model(run.log_text, table, name=impl)
        models[impl] = fsm
    return models


@pytest.fixture(scope="session")
def baseline_ue():
    return lteinspector_ue()


@pytest.fixture(scope="session")
def mme_model():
    return lteinspector_mme()
