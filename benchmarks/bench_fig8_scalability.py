"""Fig. 8 — per-property verification time, ProChecker vs LTEInspector (RQ3).

For each of the 13 common properties, verifies it on (a) the richest
extracted model (the reference/closed-source stand-in, as in the paper)
and (b) the hand-built LTEInspector model, and prints both time series.
The paper's claim — "the time required by ProChecker for each property is
only a fraction higher than LTEInspector" — is asserted as: the per-suite
total on the extracted model stays within a small constant factor of the
baseline's, despite the extracted model being strictly richer.
"""

import time

import pytest

from repro.core.cegar import check_with_cegar
from repro.properties import (COMMON_PROPERTIES, EXTRACTED_VOCAB,
                              LTEINSPECTOR_VOCAB)


def _verify_suite(ue_model, vocabulary, mme_model):
    timings = {}
    for prop in COMMON_PROPERTIES:
        formula = prop.formula_for(vocabulary)
        started = time.perf_counter()
        result = check_with_cegar(ue_model, mme_model, formula,
                                  prop.threat, name=prop.identifier)
        timings[prop.identifier] = (time.perf_counter() - started,
                                    result.states_explored)
    return timings


def test_fig8_execution_times(benchmark, extracted_models, baseline_ue,
                              mme_model):
    pro_model = extracted_models["reference"]

    def run_both():
        return (_verify_suite(pro_model, EXTRACTED_VOCAB, mme_model),
                _verify_suite(baseline_ue, LTEINSPECTOR_VOCAB, mme_model))

    pro_times, lte_times = benchmark.pedantic(run_both, rounds=1,
                                              iterations=1)

    print("\nFig. 8 reproduction — per-property verification time:")
    print(f"{'property':<10} {'ProChecker':>12} {'LTEInspector':>13} "
          f"{'Pro states':>11} {'LTE states':>11}")
    pro_total = lte_total = 0.0
    for identifier in pro_times:
        pro_seconds, pro_states = pro_times[identifier]
        lte_seconds, lte_states = lte_times[identifier]
        pro_total += pro_seconds
        lte_total += lte_seconds
        print(f"{identifier:<10} {pro_seconds * 1000:>10.1f}ms "
              f"{lte_seconds * 1000:>11.1f}ms {pro_states:>11} "
              f"{lte_states:>11}")
    ratio = pro_total / max(lte_total, 1e-9)
    print(f"{'TOTAL':<10} {pro_total * 1000:>10.1f}ms "
          f"{lte_total * 1000:>11.1f}ms   ratio={ratio:.2f}x")

    # The shape claim: the richer extracted model costs only a modest
    # constant factor over the baseline — not an order of magnitude.
    assert ratio < 10.0
    # and the extracted model is indeed the bigger one per property
    assert sum(s for _, s in pro_times.values()) \
        >= sum(s for _, s in lte_times.values())
