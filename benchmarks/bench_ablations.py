"""Ablations over the design choices DESIGN.md calls out.

Not paper tables — these quantify why the reproduction (and the paper's
system) is built the way it is:

- A1: the optional Annex C freshness limit L closes the P1 window — the
  fix the paper's root-cause analysis points at;
- A2: the IND width determines the stale-acceptance window (the paper's
  a = 2**IND observation);
- A3: property-guided adversary scoping keeps the per-property state
  space small (the alternative — one maximal adversary for all
  properties — blows up the product);
- A4: CEGAR from the maximally abstract model costs little over starting
  from a crypto-pre-encoded model, while keeping the abstraction honest.
"""

import time

import pytest

from repro.baselines import lteinspector_mme
from repro.core.cegar import check_with_cegar
from repro.lte import constants as c
from repro.testbed import simulate_operator_trace, stale_window_size
from repro.threat import Refinement, ThreatConfig


# ---------------------------------------------------------------------------
# A1: freshness limit sweep
# ---------------------------------------------------------------------------
def test_a1_freshness_limit_sweep(benchmark):
    def sweep():
        results = {}
        for limit in (None, 20, 10, 5, 2, 0):
            report = simulate_operator_trace(duration_days=14,
                                             mean_interval_hours=4,
                                             freshness_limit=limit)
            results[limit] = report.mean_replayable_days
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nA1 — mean replayable window vs Annex C limit L:")
    for limit, days in results.items():
        label = "unset (operator default)" if limit is None else str(limit)
        print(f"  L={label:>24s}: {days:5.2f} days")
    # monotone: tightening L never widens the window; L=0 closes it
    ordered = [results[None], results[20], results[10], results[5],
               results[2], results[0]]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
    assert results[0] < 0.5


# ---------------------------------------------------------------------------
# A2: IND width sweep
# ---------------------------------------------------------------------------
def test_a2_ind_width_sweep(benchmark):
    def sweep():
        return {bits: stale_window_size(bits) for bits in (3, 4, 5, 6)}

    windows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nA2 — stale-acceptance window vs IND bits:")
    for bits, window in windows.items():
        print(f"  IND={bits} (array of {1 << bits:2d}): {window} stale "
              f"requests accepted")
    for bits, window in windows.items():
        assert window == (1 << bits) - 1
    assert windows[5] == 31   # the paper's COTS observation


# ---------------------------------------------------------------------------
# A3: property-guided adversary scoping
# ---------------------------------------------------------------------------
P1_FORMULA = ("G (turn = ue & chan_dl = authentication_request & "
              "dl_mac_valid = 1 & dl_sqn_rel != fresh "
              "-> X (chan_ul != authentication_response))")

SCOPED = ThreatConfig(replay_dl=(c.AUTHENTICATION_REQUEST,))
# A deliberately oversized (but still truncated) adversary: the full
# alphabet pushes past 400x the scoped state count and minutes of wall
# time, so the ablation uses a mid-sized superset that already shows the
# blow-up while keeping the benchmark runnable.
BROAD = ThreatConfig(
    replay_dl=(c.AUTHENTICATION_REQUEST, c.ATTACH_ACCEPT),
    inject_dl=(c.PAGING, c.ATTACH_REJECT),
    inject_ul=(c.DETACH_REQUEST,))


def _check(extracted_models, config):
    started = time.perf_counter()
    result = check_with_cegar(extracted_models["reference"],
                              lteinspector_mme(), P1_FORMULA, config,
                              name="P1")
    return result, time.perf_counter() - started


def test_a3_adversary_scoping(benchmark, extracted_models):
    scoped_result, scoped_time = _check(extracted_models, SCOPED)
    broad_result, broad_time = benchmark.pedantic(
        lambda: _check(extracted_models, BROAD), rounds=1, iterations=1)

    print(f"\nA3 — P1 verification under adversary scoping:")
    print(f"  property-scoped: {scoped_result.states_explored:>7} states, "
          f"{scoped_time * 1000:8.1f}ms")
    print(f"  broad superset:  {broad_result.states_explored:>7} states, "
          f"{broad_time * 1000:8.1f}ms "
          f"({broad_result.states_explored / scoped_result.states_explored:.0f}x states)")
    # the verdict is the same; the cost is not
    assert scoped_result.is_attack and broad_result.is_attack
    assert broad_result.states_explored \
        > 10 * scoped_result.states_explored


# ---------------------------------------------------------------------------
# A4: CEGAR vs crypto-pre-encoded model
# ---------------------------------------------------------------------------
SMC_FORGE_FORMULA = (
    "G (ue_state = EMM_REGISTERED_INITIATED_AUTHENTICATED & "
    "chan_dl = security_mode_command & dl_injected = 1 & turn = ue "
    "-> X (chan_ul != security_mode_complete))")


def test_a4_cegar_vs_preencoded(benchmark, extracted_models):
    abstract_config = ThreatConfig(inject_dl=(c.SECURITY_MODE_COMMAND,))
    preencoded_config = abstract_config.refined(
        Refinement("no_forge", c.SECURITY_MODE_COMMAND))

    def run_both():
        cegar = check_with_cegar(extracted_models["reference"],
                                 lteinspector_mme(), SMC_FORGE_FORMULA,
                                 abstract_config, name="cegar")
        direct = check_with_cegar(extracted_models["reference"],
                                  lteinspector_mme(), SMC_FORGE_FORMULA,
                                  preencoded_config, name="direct")
        return cegar, direct

    cegar, direct = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nA4 — forged-SMC property:")
    print(f"  CEGAR from abstract model: verified={cegar.verified} in "
          f"{cegar.iterations} iterations "
          f"({cegar.elapsed_seconds * 1000:.0f}ms)")
    print(f"  crypto-pre-encoded model:  verified={direct.verified} in "
          f"{direct.iterations} iteration "
          f"({direct.elapsed_seconds * 1000:.0f}ms)")
    assert cegar.verified and direct.verified
    assert cegar.iterations == 2 and direct.iterations == 1
    # the abstraction overhead is bounded (one extra MC run)
    assert cegar.elapsed_seconds < 10 * max(direct.elapsed_seconds, 1e-3)
