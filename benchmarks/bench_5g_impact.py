"""Section VII "Impact on 5G" — the paper's forward-looking claims.

Three claims, each benchmarked:

1. "The generation and verification scheme of sequence number (SQN) in
   authentication_request ... is exactly the same in the 5G
   specifications, thus making the 5G rollout directly vulnerable to P1
   and P2" — the SQN machinery is generation-agnostic here, so P1/P2
   reproduce unchanged.
2. "In TS 24.501 the 5G Configuration Update Procedure ... this
   retransmission is repeated four times, i.e. on the fifth expiry of
   timer T3555, the procedure shall be aborted" — the P3-5G attack drops
   five configuration_update_commands and pins the victim's 5G-GUTI.
3. The extraction pipeline ingests the 5G procedure with no framework
   changes (the paper's "directly applicable to 5G" design claim): the
   conformance suite exercises Configuration Update and the extractor
   surfaces its transitions.
"""

import pytest

from repro.conformance import full_suite, run_conformance
from repro.extraction import extract_model, table_for_implementation
from repro.lte import constants as c
from repro.lte.implementations import REGISTRY
from repro.testbed import run_attack

IMPLEMENTATIONS = ("reference", "srsue", "oai")


@pytest.mark.parametrize("attack_id", ("P1", "P2"))
def test_5g_sqn_attacks_reproduce(benchmark, attack_id):
    """Claim 1: the Annex C SQN scheme (and hence P1/P2) is unchanged."""
    def run_all():
        return {impl: run_attack(attack_id, impl)
                for impl in IMPLEMENTATIONS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(result.succeeded for result in results.values())


def test_5g_configuration_update_denial(benchmark):
    """Claim 2: P3 transfers to the T3555-supervised procedure."""
    def run_all():
        return {impl: run_attack("P3-5G", impl)
                for impl in IMPLEMENTATIONS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for implementation, result in results.items():
        assert result.succeeded, (implementation, result.evidence)
        assert result.details["dropped"] == 5      # initial + 4 retx
    print("\nP3-5G: five dropped configuration_update_commands abort the "
          "procedure on every implementation; the 5G-GUTI never changes.")


def test_5g_procedure_extracted_without_framework_changes(benchmark):
    """Claim 3: the same pipeline ingests the 5G procedure."""
    def extract_reference():
        run = run_conformance("reference", full_suite("reference"))
        table = table_for_implementation(REGISTRY["reference"])
        fsm, _ = extract_model(run.log_text, table)
        return fsm

    fsm = benchmark.pedantic(extract_reference, rounds=1, iterations=1)
    config_transitions = [t for t in fsm.transitions
                          if t.trigger == c.CONFIGURATION_UPDATE_COMMAND]
    assert config_transitions, "Configuration Update not extracted"
    accepted = [t for t in config_transitions
                if c.CONFIGURATION_UPDATE_COMPLETE in t.actions]
    assert accepted
    print("\nextracted 5G transitions:")
    for transition in config_transitions:
        print(f"  {transition.describe()}")
