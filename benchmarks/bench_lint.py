"""Lint runtime: the static pass must stay cheap enough to gate PRs.

Times the full ``repro lint`` pipeline (spec + hygiene + xcheck + the
taint family) and the taint family alone, and records the findings
inventory per family.  The headline numbers land in
``BENCH_lint_runtime.json``:

- the full run (two dynamic extractions included) finishes inside the
  regression budget, and the taint family alone is pure static
  analysis — an order of magnitude cheaper still;
- the findings trajectory is stable: zero gating findings on the seed
  tree, and exactly the seeded Table I privacy deviations re-found as
  non-gating PCL043 re-finds;
- two back-to-back runs produce identical reports (the determinism
  contract the baseline machinery depends on).
"""

import json
import time

from repro.lint import default_baseline_path, lint_taint, run_lint

#: wall-clock regression budgets (seconds); generous against CI jitter
#: but tight enough to catch an accidentally quadratic summary pass.
FULL_RUN_BUDGET_SECONDS = 30.0
TAINT_ONLY_BUDGET_SECONDS = 5.0

IMPLEMENTATIONS = ("reference", "srsue", "oai")


def _family_counts(report):
    counts = {}
    for finding in report.findings:
        counts[finding.family] = counts.get(finding.family, 0) + 1
    return counts


def _measure():
    start = time.perf_counter()
    report = run_lint(baseline_path=default_baseline_path())
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    taint_findings = lint_taint(IMPLEMENTATIONS)
    taint_seconds = time.perf_counter() - start

    repeat = run_lint(baseline_path=default_baseline_path())
    return {
        "full_seconds": round(full_seconds, 3),
        "taint_seconds": round(taint_seconds, 3),
        "families": sorted(report.families),
        "family_counts": _family_counts(report),
        "gating": len(report.gating),
        "suppressed": len(report.suppressed),
        "taint_rules": sorted({f.rule for f in taint_findings}),
        "deterministic": report.to_dict() == repeat.to_dict(),
    }


def test_lint_runtime(benchmark):
    point = {"benchmark": "lint_runtime",
             "budget_full_seconds": FULL_RUN_BUDGET_SECONDS,
             "budget_taint_seconds": TAINT_ONLY_BUDGET_SECONDS}

    def measure_all():
        point.update(_measure())
        return point

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    # Runtime regression guard: static gating must stay PR-cheap.
    assert point["full_seconds"] < FULL_RUN_BUDGET_SECONDS, point
    assert point["taint_seconds"] < TAINT_ONLY_BUDGET_SECONDS, point
    # Findings trajectory: seed tree is clean modulo the checked-in
    # baseline, and the taint family re-finds only the seeded Table I
    # deviations (non-gating PCL043).
    assert point["gating"] == 0, point
    assert point["taint_rules"] == ["PCL043"], point
    assert point["family_counts"].get("taint", 0) == 3, point
    assert point["deterministic"] is True

    with open("BENCH_lint_runtime.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nlint runtime: full %.2fs (budget %.0fs), "
          "taint-only %.2fs (budget %.0fs), %d findings suppressed"
          % (point["full_seconds"], FULL_RUN_BUDGET_SECONDS,
             point["taint_seconds"], TAINT_ONLY_BUDGET_SECONDS,
             point["suppressed"]))
