"""Table I — the detection matrix (RQ1).

Reruns the full ProChecker pipeline (conformance run -> extraction ->
62-property CEGAR verification) per implementation, asserts the verdicts
against the paper's Table I, and benchmarks the pipeline.  The printed
matrix is the reproduction of the table's filled/empty circles.
"""

import pytest

from repro.core import ProChecker
from repro.properties.expected import (IMPLEMENTATIONS,
                                       NEW_ATTACKS as TABLE_I_NEW,
                                       PRIOR_DETECTED
                                       as TABLE_I_PRIOR_DETECTED,
                                       PRIOR_NOT_APPLICABLE
                                       as TABLE_I_PRIOR_DASH)


def _print_matrix(reports):
    print("\nTable I reproduction (x = attack found):")
    header = f"{'attack':34s}" + "".join(f"{impl:>11s}"
                                         for impl in IMPLEMENTATIONS)
    print(header)
    rows = list(TABLE_I_NEW) + list(TABLE_I_PRIOR_DETECTED) \
        + list(TABLE_I_PRIOR_DASH)
    for attack in rows:
        marks = []
        for impl in IMPLEMENTATIONS:
            if attack in TABLE_I_PRIOR_DASH:
                marks.append("-")
            else:
                marks.append("x" if attack
                             in reports[impl].detected_attacks() else ".")
        print(f"{attack:34s}" + "".join(f"{m:>11s}" for m in marks))


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
def test_full_pipeline(benchmark, implementation):
    """Benchmark one implementation's full 62-property analysis."""
    report = benchmark.pedantic(
        lambda: ProChecker(implementation).analyze(),
        rounds=1, iterations=1)
    detected = report.detected_attacks()
    for attack, expectations in TABLE_I_NEW.items():
        assert (attack in detected) == expectations[implementation], attack
    for attack in TABLE_I_PRIOR_DETECTED:
        assert attack in detected, attack
    for attack in TABLE_I_PRIOR_DASH:
        assert attack not in detected, attack
    counts = report.counts()
    assert counts["properties"] == 62
    print(f"\n{implementation}: {counts['verified']} verified, "
          f"{counts['violated']} violated, {counts['attacks']} attacks, "
          f"FSM {report.fsm_summary}")


def test_detection_matrix_summary(benchmark):
    """Produce the full three-implementation matrix in one run."""
    def analyze_all():
        return {impl: ProChecker(impl).analyze()
                for impl in IMPLEMENTATIONS}

    reports = benchmark.pedantic(analyze_all, rounds=1, iterations=1)
    _print_matrix(reports)
    # headline numbers: 3 new protocol attacks, 6 implementation issues
    # across the two open stacks, 12 applicable prior attacks
    new_protocol = {a for a in TABLE_I_NEW
                    if all(TABLE_I_NEW[a].get(i) for i in IMPLEMENTATIONS)}
    assert new_protocol == {"P1", "P2", "P3"}
    open_stack_issues = {
        attack for attack in TABLE_I_NEW
        if attack.startswith("I")
        and (attack in reports["srsue"].detected_attacks()
             or attack in reports["oai"].detected_attacks())}
    assert len(open_stack_issues) == 6
