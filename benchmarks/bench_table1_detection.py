"""Table I — the detection matrix (RQ1).

Reruns the full ProChecker pipeline (conformance run -> extraction ->
62-property CEGAR verification) per implementation, asserts the verdicts
against the paper's Table I, and benchmarks the pipeline.  The printed
matrix is the reproduction of the table's filled/empty circles.
"""

import json
import os
import time

import pytest

import repro.obs as obs
from repro.core import AnalysisConfig, ProChecker, analyze_many, \
    extraction_cache
from repro.properties.expected import (IMPLEMENTATIONS,
                                       NEW_ATTACKS as TABLE_I_NEW,
                                       PRIOR_DETECTED
                                       as TABLE_I_PRIOR_DETECTED,
                                       PRIOR_NOT_APPLICABLE
                                       as TABLE_I_PRIOR_DASH)


def _print_matrix(reports):
    print("\nTable I reproduction (x = attack found):")
    header = f"{'attack':34s}" + "".join(f"{impl:>11s}"
                                         for impl in IMPLEMENTATIONS)
    print(header)
    rows = list(TABLE_I_NEW) + list(TABLE_I_PRIOR_DETECTED) \
        + list(TABLE_I_PRIOR_DASH)
    for attack in rows:
        marks = []
        for impl in IMPLEMENTATIONS:
            if attack in TABLE_I_PRIOR_DASH:
                marks.append("-")
            else:
                marks.append("x" if attack
                             in reports[impl].detected_attacks() else ".")
        print(f"{attack:34s}" + "".join(f"{m:>11s}" for m in marks))


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
def test_full_pipeline(benchmark, implementation):
    """Benchmark one implementation's full 62-property analysis."""
    extraction_cache.clear()
    config = AnalysisConfig(implementation)
    report = benchmark.pedantic(
        lambda: ProChecker.from_config(config).analyze(),
        rounds=1, iterations=1)
    # One full analysis = exactly one conformance run + extraction.
    assert extraction_cache.stats()["conformance_runs"] == 1
    detected = report.detected_attacks()
    for attack, expectations in TABLE_I_NEW.items():
        assert (attack in detected) == expectations[implementation], attack
    for attack in TABLE_I_PRIOR_DETECTED:
        assert attack in detected, attack
    for attack in TABLE_I_PRIOR_DASH:
        assert attack not in detected, attack
    counts = report.counts()
    assert counts["properties"] == 62
    print(f"\n{implementation}: {counts['verified']} verified, "
          f"{counts['violated']} violated, {counts['attacks']} attacks, "
          f"FSM {report.fsm_summary}")


def _emit_trajectory(reports):
    """Write the benchmark trajectory point + the pipeline trace.

    ``BENCH_table1_detection.json`` carries the per-phase timings,
    canonical per-implementation stats, and the per-property wall-time
    trajectory (plus the slowest property's exploration effort — the
    number the MC regression guard watches) of the full
    three-implementation run; ``trace.jsonl`` is the reassembled span
    trace CI uploads as an artifact and audits for phase completeness.
    """
    roots = obs.drain_spans()
    batch_roots = [r for r in roots if r.name == "pipeline.analyze"]
    stats_by_impl = {impl: report.stats
                     for impl, report in reports.items()
                     if report.stats is not None}
    any_stats = next(iter(stats_by_impl.values()), None)
    obs.write_trace("trace.jsonl", batch_roots or roots, any_stats)
    point = {
        "benchmark": "table1_detection",
        "implementations": sorted(reports),
        "jobs": any_stats.jobs if any_stats else 1,
        "phases": dict(any_stats.phases) if any_stats else {},
        "elapsed_seconds": {
            impl: report.elapsed_seconds
            for impl, report in sorted(reports.items())},
        "canonical": {impl: stats.canonical_dict()
                      for impl, stats in sorted(stats_by_impl.items())},
        "per_property_seconds": {
            impl: {r.property.identifier: round(r.elapsed_seconds, 6)
                   for r in sorted(report.results,
                                   key=lambda r: r.property.identifier)}
            for impl, report in sorted(reports.items())},
        "slowest_property": _slowest_property(reports),
    }
    with open("BENCH_table1_detection.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _slowest_property(reports):
    """The (implementation, property) pair with the worst MC effort."""
    worst = None
    for impl, report in sorted(reports.items()):
        for result in report.results:
            row = (result.states_explored, impl,
                   result.property.identifier, result.elapsed_seconds)
            if worst is None or row > worst:
                worst = row
    states, impl, identifier, seconds = worst
    return {"implementation": impl, "property": identifier,
            "states_explored": states, "seconds": round(seconds, 6)}


def test_detection_matrix_summary(benchmark):
    """Produce the full three-implementation matrix in one run."""
    extraction_cache.clear()
    obs.reset()

    def analyze_all():
        return analyze_many(IMPLEMENTATIONS)

    reports = benchmark.pedantic(analyze_all, rounds=1, iterations=1)
    _emit_trajectory(reports)
    _print_matrix(reports)
    # headline numbers: 3 new protocol attacks, 6 implementation issues
    # across the two open stacks, 12 applicable prior attacks
    new_protocol = {a for a in TABLE_I_NEW
                    if all(TABLE_I_NEW[a].get(i) for i in IMPLEMENTATIONS)}
    assert new_protocol == {"P1", "P2", "P3"}
    open_stack_issues = {
        attack for attack in TABLE_I_NEW
        if attack.startswith("I")
        and (attack in reports["srsue"].detected_attacks()
             or attack in reports["oai"].detected_attacks())}
    assert len(open_stack_issues) == 6
    # MC regression guard: the on-the-fly product search keeps even the
    # worst property's exploration in the low thousands of model states
    # (the materialised reference engine needed 5-10x that).  A checker
    # change that pushes past this bound is a real perf regression, not
    # noise — states-explored is deterministic and width-invariant.
    slowest = _slowest_property(reports)
    print(f"slowest property: {slowest['property']} on "
          f"{slowest['implementation']} "
          f"({slowest['states_explored']} states, "
          f"{slowest['seconds']:.3f}s)")
    assert slowest["states_explored"] <= 5000, slowest


def test_engine_speedup(benchmark):
    """Parallel engine vs the serial seed-equivalent path.

    The serial configuration disables the extraction cache and CEGAR
    input sharing and pins one worker — the behaviour of the original
    ``analyze()``.  The engine configuration uses the defaults (all
    cores, shared caches).  Verdicts must match byte-for-byte; the
    speedup assertion only fires on multi-core runners, where the
    process pool carries most of the win.
    """
    serial_config = AnalysisConfig("srsue", jobs=1,
                                   use_extraction_cache=False,
                                   share_cegar_inputs=False)
    engine_config = AnalysisConfig("srsue")

    extraction_cache.clear()
    start = time.perf_counter()
    serial_report = ProChecker.from_config(serial_config).analyze()
    serial_seconds = time.perf_counter() - start

    extraction_cache.clear()
    start = time.perf_counter()
    engine_report = benchmark.pedantic(
        lambda: ProChecker.from_config(engine_config).analyze(),
        rounds=1, iterations=1)
    engine_seconds = time.perf_counter() - start

    assert engine_report.verdict_signature() \
        == serial_report.verdict_signature()
    speedup = serial_seconds / max(engine_seconds, 1e-9)
    cores = os.cpu_count() or 1
    print(f"\nserial {serial_seconds:.2f}s vs engine {engine_seconds:.2f}s "
          f"({engine_report.jobs} worker(s), {cores} cores): "
          f"{speedup:.2f}x")
    if cores >= 4:
        assert speedup >= 1.5, (
            f"expected >=1.5x on a {cores}-core runner, got {speedup:.2f}x")
