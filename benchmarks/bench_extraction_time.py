"""Section VI — extraction time as the conformance log grows.

The paper's largest (closed-source, 7087-case) log takes ~5 minutes to
analyse.  Our logs are smaller, so the reproducible claim is the *shape*:
extraction time stays linear in log size, demonstrated by scaling the
generated suite.
"""

import pytest

from repro.conformance import full_suite, generated_suite, run_conformance
from repro.extraction import ModelExtractor, table_for_implementation
from repro.lte.implementations import REGISTRY


@pytest.fixture(scope="module")
def scaled_logs():
    """Conformance logs at 1x, 3x and 6x the base suite size."""
    logs = {}
    for multiplier in (1, 3, 6):
        cases = generated_suite(multiplier)
        run = run_conformance("reference", cases)
        logs[multiplier] = run.log_text
    return logs


def test_extraction_scales_linearly(benchmark, scaled_logs):
    table = table_for_implementation(REGISTRY["reference"])

    def extract_largest():
        extractor = ModelExtractor(table)
        extractor.extract(scaled_logs[6])
        return extractor.stats

    stats = benchmark(extract_largest)
    print(f"\nlargest log: {stats.log_lines} records, {stats.blocks} "
          f"blocks -> {stats.transitions} transitions in "
          f"{stats.elapsed_seconds * 1000:.0f}ms")

    # shape check: time per log line stays flat across scales
    per_line = {}
    for multiplier, log in scaled_logs.items():
        extractor = ModelExtractor(table)
        extractor.extract(log)
        per_line[multiplier] = (extractor.stats.elapsed_seconds
                                / max(extractor.stats.log_lines, 1))
        print(f"  {multiplier}x: {extractor.stats.log_lines:>7} lines, "
              f"{extractor.stats.elapsed_seconds * 1000:7.1f}ms, "
              f"{per_line[multiplier] * 1e6:6.2f}us/line")
    assert per_line[6] < per_line[1] * 3.0   # no superlinear blow-up

    # the FSM converges: more repetitions of the same behaviour do not
    # add transitions
    small = ModelExtractor(table)
    small_fsm = small.extract(scaled_logs[1])
    large = ModelExtractor(table)
    large_fsm = large.extract(scaled_logs[6])
    assert set(large_fsm.transitions) == set(small_fsm.transitions)


def test_extraction_per_implementation(benchmark):
    """Extraction on the paper-style per-implementation suites."""
    def extract_all():
        stats = {}
        for impl in ("reference", "srsue", "oai"):
            run = run_conformance(impl, full_suite(impl))
            table = table_for_implementation(REGISTRY[impl])
            extractor = ModelExtractor(table)
            extractor.extract(run.log_text)
            stats[impl] = extractor.stats
        return stats

    stats = benchmark.pedantic(extract_all, rounds=1, iterations=1)
    for impl, stat in stats.items():
        print(f"\n{impl}: {stat.log_lines} records -> {stat.states} "
              f"states / {stat.transitions} transitions in "
              f"{stat.elapsed_seconds * 1000:.1f}ms")
        assert stat.elapsed_seconds < 60   # far under the 5-minute budget
