"""Table II — the 13 properties common with LTEInspector.

Verifies every common property on both the ProChecker-extracted model and
the LTEInspector baseline model (the same property text instantiated in
each model's vocabulary), confirming that both toolchains handle the
shared property set — the premise of the Fig. 8 timing comparison.
"""

import pytest

from repro.core.cegar import check_with_cegar
from repro.properties import (COMMON_PROPERTIES, EXTRACTED_VOCAB,
                              LTEINSPECTOR_VOCAB)


@pytest.mark.parametrize("prop", COMMON_PROPERTIES,
                         ids=lambda p: p.identifier)
def test_common_property_on_extracted_model(benchmark, prop,
                                            extracted_models, mme_model):
    """Each Table II property, CEGAR-verified on the extracted model."""
    ue_model = extracted_models["reference"]
    formula = prop.formula_for(EXTRACTED_VOCAB)

    result = benchmark.pedantic(
        lambda: check_with_cegar(ue_model, mme_model, formula,
                                 prop.threat, name=prop.identifier),
        rounds=1, iterations=1)
    # every common property terminates with a definite verdict
    assert result.verified or result.is_attack
    print(f"\n{prop.identifier}: "
          f"{'verified' if result.verified else 'attack'} "
          f"({result.states_explored} states, "
          f"{result.iterations} iterations) — {prop.description[:60]}")


def test_common_properties_on_baseline_model(benchmark, baseline_ue,
                                             mme_model):
    """The same 13 properties on the hand-built LTEInspector model."""
    def verify_all():
        outcomes = {}
        for prop in COMMON_PROPERTIES:
            formula = prop.formula_for(LTEINSPECTOR_VOCAB)
            outcomes[prop.identifier] = check_with_cegar(
                baseline_ue, mme_model, formula, prop.threat,
                name=prop.identifier)
        return outcomes

    outcomes = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert len(outcomes) == 13
    decided = sum(1 for r in outcomes.values()
                  if r.verified or r.is_attack)
    assert decided == 13
    print("\nLTEInspector-model verdicts:")
    for identifier, result in outcomes.items():
        print(f"  {identifier}: "
              f"{'verified' if result.verified else 'attack'}")
