"""Fig. 7 / RQ2 — model comparison: Pro^mu refines LTE^mu.

Checks the paper's refinement relation between the extracted model of the
closed-source stand-in and the LTEInspector baseline, reports the mapping
breakdown (direct / stricter-condition / split-through-new-states, the
two Fig. 7 cases), and the model-richness statistics.
"""

import pytest

from repro.baselines import SUBSTATE_MAP
from repro.fsm import check_refinement, guard_strictness


def test_rq2_refinement(benchmark, extracted_models, baseline_ue):
    extracted = extracted_models["reference"]

    report = benchmark.pedantic(
        lambda: check_refinement(baseline_ue, extracted,
                                 substate_map=SUBSTATE_MAP),
        rounds=1, iterations=1)

    counts = report.mapping_counts()
    print("\nRQ2 model comparison (reference extraction vs LTEInspector):")
    print(f"  states:     {len(baseline_ue.states)} -> "
          f"{len(extracted.states)} "
          f"(all baseline states mapped: {report.states_ok})")
    print(f"  conditions: {len(baseline_ue.conditions)} -> "
          f"{len(extracted.conditions)} "
          f"(superset: {report.condition_superset})")
    print(f"  actions:    {len(baseline_ue.actions)} -> "
          f"{len(extracted.actions)} "
          f"(superset: {report.action_superset})")
    print(f"  transition mapping: {counts}")
    mean, peak = guard_strictness(extracted)
    base_mean, base_peak = guard_strictness(baseline_ue)
    print(f"  guard predicates/transition: {base_mean:.2f} -> {mean:.2f} "
          f"(max {base_peak} -> {peak})")
    sample = [m for m in report.transition_mappings
              if m.kind == "stricter-condition"][:2]
    for mapping in sample:
        print(f"  Fig.7(i)-style example: {mapping.abstract.describe()}")
        print(f"      refined with: {', '.join(mapping.new_conditions)}")

    # the paper's three refinement clauses
    assert report.states_ok
    assert report.condition_superset
    assert report.action_superset
    # stricter-condition mappings exist (Fig. 7(i)) and the model is
    # strictly richer in data constraints
    assert counts["stricter-condition"] >= 1
    assert peak > base_peak


@pytest.mark.parametrize("implementation", ("srsue", "oai"))
def test_rq2_open_source_models(benchmark, extracted_models, baseline_ue,
                                implementation):
    extracted = extracted_models[implementation]
    report = benchmark.pedantic(
        lambda: check_refinement(baseline_ue, extracted,
                                 substate_map=SUBSTATE_MAP),
        rounds=1, iterations=1)
    assert report.states_ok
    assert report.condition_superset
    assert report.action_superset
