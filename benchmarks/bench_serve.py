"""Service-mode throughput: jobs/minute, cold versus store-hit.

Boots the in-process :class:`~repro.serve.AnalysisService` at 1/2/4
workers, pushes a batch of distinct small analysis jobs through it cold,
then resubmits the identical batch so every job is a content-addressed
store hit.  The headline numbers land in
``BENCH_serve_throughput.json``:

- cold jobs/minute scales with the worker count (the queue actually
  parallelises);
- store-hit jobs/minute is orders of magnitude above cold (a hit is an
  O(1) JSON read — no extraction, no model checking);
- every hit reports empty work counters (the zero-work contract).
"""

import json
import time

import pytest

from repro.core import AnalysisConfig, extraction_cache
from repro.serve import AnalysisService, JobJournal, JobStatus
from repro.store import ResultStore, job_digest

#: Distinct (implementation, property-slice) jobs: small enough to keep
#: the benchmark minutes-scale, varied enough to exercise the queue.
JOB_CONFIGS = [
    ("reference", ["SEC-01", "SEC-02"]),
    ("reference", ["SEC-03", "SEC-04"]),
    ("srsue", ["SEC-01", "SEC-02"]),
    ("srsue", ["SEC-03", "SEC-04"]),
    ("oai", ["SEC-01", "SEC-02"]),
    ("oai", ["SEC-03", "SEC-04"]),
]

WORKER_COUNTS = (1, 2, 4)


def _drain(service, job_ids, timeout=300.0):
    deadline = time.monotonic() + timeout
    records = []
    for job_id in job_ids:
        while time.monotonic() < deadline:
            record = service.job(job_id)
            if record.status in (JobStatus.DONE, JobStatus.FAILED):
                records.append(record)
                break
            time.sleep(0.01)
        else:
            raise AssertionError(f"job {job_id} did not finish")
    return records


def _run_batch(service):
    """Submit every job config; returns (records, elapsed_seconds)."""
    start = time.perf_counter()
    submitted = []
    for implementation, property_ids in JOB_CONFIGS:
        config = AnalysisConfig(implementation, property_ids=property_ids,
                                jobs=1)
        submitted.append(service.submit(config.to_dict()).job_id)
    records = _drain(service, submitted)
    return records, time.perf_counter() - start


def _jobs_per_minute(count, seconds):
    return round(count / seconds * 60.0, 2) if seconds > 0 else None


def test_serve_throughput(tmp_path, benchmark):
    point = {"benchmark": "serve_throughput",
             "job_count": len(JOB_CONFIGS), "runs": {}}

    def measure_all():
        for workers in WORKER_COUNTS:
            # A fresh store and a cold extraction cache per worker count:
            # each cold batch pays the full pipeline price.
            extraction_cache.clear()
            service = AnalysisService(
                ResultStore(tmp_path / f"store-w{workers}"),
                workers=workers, default_engine_jobs=1)
            service.start()
            try:
                cold, cold_seconds = _run_batch(service)
                assert all(r.status is JobStatus.DONE for r in cold)
                assert not any(r.store_hit for r in cold)

                hits, hit_seconds = _run_batch(service)
                assert all(r.store_hit for r in hits)
                assert all(r.counters == {} for r in hits)
            finally:
                service.stop()
            point["runs"][str(workers)] = {
                "workers": workers,
                "cold_seconds": round(cold_seconds, 3),
                "cold_jobs_per_minute": _jobs_per_minute(
                    len(cold), cold_seconds),
                "store_hit_seconds": round(hit_seconds, 3),
                "store_hit_jobs_per_minute": _jobs_per_minute(
                    len(hits), hit_seconds),
            }
        return point

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    runs = point["runs"]
    for entry in runs.values():
        assert (entry["store_hit_jobs_per_minute"]
                > entry["cold_jobs_per_minute"] * 10), (
            "store hits should be >=10x cold throughput", entry)
    point["speedup_store_hit_vs_cold"] = {
        key: round(entry["store_hit_jobs_per_minute"]
                   / entry["cold_jobs_per_minute"], 1)
        for key, entry in runs.items()}

    with open("BENCH_serve_throughput.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nserve throughput (jobs/minute):")
    for key in sorted(runs, key=int):
        entry = runs[key]
        print(f"  {entry['workers']} worker(s): "
              f"cold {entry['cold_jobs_per_minute']}, "
              f"store-hit {entry['store_hit_jobs_per_minute']}")


def test_journal_replay_recovery(tmp_path, benchmark):
    """Crash-recovery cost: replaying journaled submissions over a warm
    store must resolve every job as an O(1) hit at ``start()`` time —
    replay wall time is store-read-bound, never pipeline-bound."""
    extraction_cache.clear()
    store = ResultStore(tmp_path / "replay-store")
    warm = AnalysisService(store, workers=2, default_engine_jobs=1)
    warm.start()
    try:
        cold, cold_seconds = _run_batch(warm)
        assert all(r.status is JobStatus.DONE for r in cold)
    finally:
        warm.stop()

    # Hand-journal the identical batch as crash-pending submissions —
    # submits with no finish, exactly what a SIGKILL mid-queue leaves.
    journal = JobJournal(tmp_path / "replay-journal")
    pending = []
    for index, (implementation, property_ids) in enumerate(JOB_CONFIGS):
        config = AnalysisConfig(implementation,
                                property_ids=property_ids, jobs=1)
        job_id = f"j{index + 1:06d}"
        journal.append("submit", job_id, digest=job_digest(config),
                       kind="analysis", implementation=implementation,
                       payload=config.to_dict(), deadline_seconds=None,
                       submitted_at=time.time())
        pending.append(job_id)

    point = {}

    def recover():
        revived = AnalysisService(store, workers=2,
                                  default_engine_jobs=1, journal=journal)
        start = time.perf_counter()
        revived.start()
        replay_seconds = time.perf_counter() - start
        try:
            records = [revived.job(job_id) for job_id in pending]
            assert all(r.status is JobStatus.DONE for r in records)
            assert all(r.store_hit for r in records), records
            assert all(r.counters == {} for r in records), records
        finally:
            revived.stop()
        point["replay_seconds"] = round(replay_seconds, 4)

    benchmark.pedantic(recover, rounds=1, iterations=1)

    point.update({
        "pending_jobs": len(pending),
        "cold_batch_seconds": round(cold_seconds, 3),
        "replayed_hits_per_minute": _jobs_per_minute(
            len(pending), point["replay_seconds"]),
    })
    assert point["replay_seconds"] < cold_seconds, point

    try:
        with open("BENCH_serve_throughput.json") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {"benchmark": "serve_throughput"}
    payload["journal_replay"] = point
    with open("BENCH_serve_throughput.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\njournal replay: {len(pending)} pending jobs recovered as "
          f"store hits in {point['replay_seconds']}s "
          f"(cold batch took {point['cold_batch_seconds']}s)")
