"""Fuzzing effectiveness: coverage trajectory and deviation discovery.

Runs pinned-seed campaigns against each implementation and records how
extracted-FSM transition coverage, the off-model frontier and the
unique-deviation count grow with the execution budget.  The headline
numbers land in ``BENCH_fuzz_coverage.json``:

- coverage is monotone in the budget and reaches a meaningful fraction
  of the extracted machine within a few hundred executions;
- srsUE and OAI campaigns each re-find seeded Table I deviations from
  the clean reference corpus (classification is post-hoc labelling —
  discovery never reads it);
- the reference self-campaign stays deviation-free at every budget
  (differential-oracle soundness);
- re-running a campaign is byte-identical (the determinism contract).
"""

import json
import time

from repro.fuzz import FuzzConfig, run_campaign

SEED = 20260808
BUDGET = 320
IMPLEMENTATIONS = ("reference", "srsue", "oai")


def _campaign_point(implementation):
    config = FuzzConfig(implementation=implementation, seed=SEED,
                        budget_execs=BUDGET)
    start = time.perf_counter()
    result = run_campaign(config)
    seconds = time.perf_counter() - start
    classifications = sorted(
        {d.classification for d in result.deviations if d.classification})
    return {
        "implementation": implementation,
        "campaign": result.campaign,
        "execs": result.execs,
        "seconds": round(seconds, 3),
        "execs_per_second": (round(result.execs / seconds, 1)
                             if seconds > 0 else None),
        "corpus_size": result.corpus_size,
        "coverage_transitions": result.coverage_transitions,
        "coverage_universe": result.coverage_universe,
        "coverage_frontier": result.coverage_frontier,
        "unique_deviations": len(result.deviations),
        "table1_classifications": classifications,
        "minimize_execs": result.minimize_execs,
        "trajectory": [dict(point) for point in result.trajectory],
    }


def test_fuzz_coverage(benchmark):
    point = {"benchmark": "fuzz_coverage", "seed": SEED,
             "budget_execs": BUDGET, "campaigns": {}}

    def measure_all():
        for implementation in IMPLEMENTATIONS:
            point["campaigns"][implementation] = \
                _campaign_point(implementation)
        return point

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    campaigns = point["campaigns"]
    # Oracle soundness: the reference never deviates from itself.
    assert campaigns["reference"]["unique_deviations"] == 0
    # Re-discovery: both seeded-buggy targets yield classified Table I
    # deviations from the clean corpus.
    assert campaigns["srsue"]["table1_classifications"]
    assert campaigns["oai"]["table1_classifications"]
    for entry in campaigns.values():
        coverage = [p["coverage"] for p in entry["trajectory"]]
        assert coverage == sorted(coverage), (
            "coverage must be monotone", entry["implementation"])
        assert entry["coverage_transitions"] > 0

    with open("BENCH_fuzz_coverage.json", "w") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nfuzz coverage (seed %d, %d execs):" % (SEED, BUDGET))
    for implementation in IMPLEMENTATIONS:
        entry = campaigns[implementation]
        print(f"  {implementation}: "
              f"{entry['coverage_transitions']}"
              f"/{entry['coverage_universe']} transitions, "
              f"frontier {entry['coverage_frontier']}, "
              f"{entry['unique_deviations']} deviation(s) "
              f"{entry['table1_classifications']}")
