"""Section VI — NAS-layer coverage with and without the added test cases.

The paper reports 84% NAS coverage on srsLTE after adding nine cases (and
seven for OAI).  Reproduces the measurement: coverage of the stock
(standard) suite vs the suite extended with the per-implementation
additions, for every implementation.
"""

import pytest

from repro.conformance import (coverage_gain, full_suite, measure_coverage,
                               run_conformance, standard_suite)
from repro.lte.implementations import REGISTRY


@pytest.mark.parametrize("implementation", ("reference", "srsue", "oai"))
def test_coverage_measurement(benchmark, implementation):
    ue_class = REGISTRY[implementation]

    def measure_both():
        base_run = run_conformance(implementation, standard_suite())
        full_run = run_conformance(implementation,
                                   full_suite(implementation))
        base = measure_coverage(ue_class, base_run.log_text,
                                implementation)
        extended = measure_coverage(ue_class, full_run.log_text,
                                    implementation)
        return base, extended

    base, extended = benchmark.pedantic(measure_both, rounds=1,
                                        iterations=1)
    gain = coverage_gain(base, extended)
    added = len(full_suite(implementation)) - len(standard_suite())
    print(f"\n{implementation}: standard suite {base.percent}% -> "
          f"+{added} added cases -> {extended.percent}% handler coverage")

    # the paper's shape: high (but initially incomplete behaviour-wise)
    # coverage, complete after the additions
    assert extended.percent == 100.0
    assert extended.percent >= base.percent
    # the stimulus matrix keeps growing with the added cases
    assert len(extended.stimulus_pairs) > len(base.stimulus_pairs)
