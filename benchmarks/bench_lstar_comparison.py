"""Related-work comparison: black-box L* learning vs white-box extraction.

The paper argues (Section VIII) that active-automata learning "require[s]
a significantly high time and number of queries" and that "the extracted
FSM does not have a proper indication of states" compared to the
white-box extraction.  This benchmark runs both approaches on the same
implementation and quantifies both claims:

- **query cost**: L* needs hundreds of resets and thousands of input
  symbols *per hypothesis round*; ProChecker re-uses the one instrumented
  conformance run the vendor executes anyway;
- **semantic content**: the learned Mealy machine has opaque numbered
  states and message-level labels only; the extracted FSM carries the
  standards' state names and the data predicates (MAC validity, SQN and
  COUNT relations) the security properties quantify over.
"""

import pytest

from repro.baselines import learn_ue_model
from repro.conformance import full_suite, run_conformance
from repro.extraction import extract_model, table_for_implementation
from repro.fsm import guard_strictness
from repro.lte import constants as c
from repro.lte.implementations import REGISTRY


def test_lstar_learns_a_model(benchmark):
    machine, stats = benchmark.pedantic(
        lambda: learn_ue_model("reference", equivalence_depth=3),
        rounds=1, iterations=1)
    print(f"\nL* learned {len(machine.states)} states; cost: "
          f"{stats.resets} resets, {stats.symbols} input symbols, "
          f"{stats.membership_queries} membership queries, "
          f"{stats.equivalence_tests} equivalence tests")
    assert len(machine.states) >= 4
    # the hypothesis is deterministic and total
    for state in machine.states:
        for symbol in ("power_on", "auth_request_fresh"):
            assert (state, symbol) in machine.transitions


def test_query_cost_vs_conformance_reuse(benchmark):
    """ProChecker's extraction piggybacks on the conformance run."""
    def both():
        machine, stats = learn_ue_model("reference", equivalence_depth=3)
        run = run_conformance("reference", full_suite("reference"))
        table = table_for_implementation(REGISTRY["reference"])
        fsm, extraction_stats = extract_model(run.log_text, table)
        return machine, stats, fsm, extraction_stats, run

    machine, stats, fsm, extraction_stats, run = benchmark.pedantic(
        both, rounds=1, iterations=1)
    conformance_cases = run.executed
    print(f"\nquery cost:")
    print(f"  L*:         {stats.resets} protocol sessions "
          f"(dedicated learning traffic)")
    print(f"  ProChecker: {conformance_cases} sessions — the conformance "
          f"suite the vendor runs anyway; extraction itself costs "
          f"{extraction_stats.elapsed_seconds * 1000:.0f}ms of log "
          f"analysis")
    assert stats.resets > 10 * conformance_cases


def test_semantic_content_comparison(benchmark, extracted_models):
    machine, _stats = benchmark.pedantic(
        lambda: learn_ue_model("reference", equivalence_depth=2),
        rounds=1, iterations=1)
    extracted = extracted_models["reference"]

    learned_state_names = {str(state) for state in machine.states}
    assert all(name.isdigit() for name in learned_state_names), \
        "L* states are opaque numbers"
    assert all(state.startswith("EMM_") for state in extracted.states), \
        "extracted states carry the standards' names"

    mean_predicates, peak = guard_strictness(extracted)
    print(f"\nsemantic content:")
    print(f"  L*:         states {sorted(machine.states)} (opaque), "
          f"labels are message types only")
    print(f"  ProChecker: states {sorted(extracted.states)[:3]}..., "
          f"{mean_predicates:.1f} data predicates per transition "
          f"(max {peak})")
    assert peak >= 5
    # the properties behind P1/I1 are inexpressible on the learned model:
    # no transition mentions SQN or COUNT relations
    assert not any("sqn" in output
                   for (_s, _a), (_t, output) in
                   machine.transitions.items())
    assert any("sqn_fresh=1" in t.conditions for t in extracted)
