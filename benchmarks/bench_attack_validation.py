"""Figs. 4-6 — end-to-end attack validation on the (simulated) testbed.

Benchmarks the attack scripts that realise the paper's message-sequence
diagrams: Fig. 4 (P1 capture + replay), Fig. 5 (the SQN array behaviour
behind it), Fig. 6 (P2 linkability), plus the drop-budget of P3 and the
I-series issues — asserting the Table I outcomes for each implementation.
"""

import pytest

from repro.testbed import (run_attack, simulate_operator_trace,
                           stale_window_size)

ATTACK_EXPECTATIONS = {
    # (attack, implementation) -> succeeds?
    ("P1", "reference"): True, ("P1", "srsue"): True, ("P1", "oai"): True,
    ("P2", "reference"): True, ("P2", "srsue"): True, ("P2", "oai"): True,
    ("P3", "reference"): True, ("P3", "srsue"): True, ("P3", "oai"): True,
    ("I1", "reference"): False, ("I1", "srsue"): True, ("I1", "oai"): True,
    ("I2", "reference"): False, ("I2", "srsue"): False, ("I2", "oai"): True,
    ("I3", "reference"): False, ("I3", "srsue"): True, ("I3", "oai"): False,
    ("I4", "reference"): False, ("I4", "srsue"): True, ("I4", "oai"): False,
    ("I5", "reference"): False, ("I5", "srsue"): False, ("I5", "oai"): True,
    ("I6", "reference"): False, ("I6", "srsue"): True, ("I6", "oai"): True,
}


@pytest.mark.parametrize("attack_id",
                         ("P1", "P2", "P3", "I1", "I2", "I3", "I4", "I5",
                          "I6"))
def test_attack_script(benchmark, attack_id):
    """Run the attack against all three implementations; assert Table I."""
    def run_all():
        return {impl: run_attack(attack_id, impl)
                for impl in ("reference", "srsue", "oai")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for impl, result in results.items():
        expected = ATTACK_EXPECTATIONS[(attack_id, impl)]
        assert result.succeeded == expected, (impl, result.evidence)
    summary = {impl: "ATTACK" if r.succeeded else "safe"
               for impl, r in results.items()}
    print(f"\n{attack_id}: {summary}")


def test_fig5_sqn_array_window(benchmark):
    """Fig. 5: the 32-slot array accepts 31 previously captured requests."""
    window = benchmark(stale_window_size, 5)
    assert window == 31
    print(f"\nSQN array (IND=5 bits): {window} stale "
          f"authentication_requests accepted")


def test_sqn_staleness_in_operator_traces(benchmark):
    """Section VII-A: captured requests stay replayable for days."""
    report = benchmark.pedantic(
        lambda: simulate_operator_trace(duration_days=21,
                                        mean_interval_hours=4),
        rounds=1, iterations=1)
    print(f"\noperator-trace staleness: mean "
          f"{report.mean_replayable_days:.1f} days, max "
          f"{report.max_replayable_days:.1f} days over "
          f"{len(report.events)} authentications")
    assert report.mean_replayable_days > 2.0   # "a couple of days old"

    limited = simulate_operator_trace(duration_days=21,
                                      mean_interval_hours=4,
                                      freshness_limit=5)
    print(f"with the optional Annex C limit L=5: mean "
          f"{limited.mean_replayable_days:.2f} days")
    assert limited.mean_replayable_days < report.mean_replayable_days
